/**
 * @file
 * Primal-dual interior-point solver for RoboX MPC problems.
 *
 * Implements the paper's solver (Sec. II-B): a slack-based primal-dual
 * interior point method whose Newton systems are factored stage-wise
 * with Cholesky decompositions and forward/backward substitution
 * (mpc/riccati.hh). The cost Hessian uses the Gauss-Newton
 * approximation, which is exact in structure for the translator's
 * weighted-norm objective sum_i ||p_i||^2_{W_i}. Successive controller
 * invocations warm-start from the shifted previous trajectory.
 *
 * Hot-path discipline: every buffer the solve loop touches is owned by
 * a per-instance SolverWorkspace pre-sized at construction, so a
 * warmed-up solve performs zero heap allocations (verified by the
 * allocation hook in SolveStats and tests/batch_test.cc). This is what
 * makes the per-solve latency worth batching across robots with
 * mpc/batch.hh.
 */

#ifndef ROBOX_MPC_IPM_HH
#define ROBOX_MPC_IPM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "mpc/dense_kkt.hh"
#include "mpc/problem.hh"
#include "mpc/riccati.hh"
#include "mpc/solve_trace.hh"
#include "mpc/status.hh"
#include "support/checkpoint.hh"

namespace robox::mpc
{

/** Statistics from the most recent solve, fed to performance models
 *  and to BatchController::report(). */
struct SolveStats
{
    int iterations = 0;
    bool converged = false;
    double objective = 0.0;
    double eqResidual = 0.0;    //!< Final inf-norm of dynamics residual.
    double compAverage = 0.0;   //!< Final average complementarity.
    std::uint64_t riccatiFlops = 0; //!< KKT-backend flops this solve.
    int lineSearchEvals = 0;
    double solveSeconds = 0.0;  //!< Wall time of the last solve() call.
    /** Heap allocations made by the solving thread during the last
     *  solve(). Zero in steady state; always zero when the counting
     *  hook is not linked (support/alloc_hook.hh). */
    std::uint64_t heapAllocations = 0;

    /** Structured outcome of the solve (never throws past this). */
    SolveStatus status = SolveStatus::Unsolved;
    /** Total recovery-ladder activations during the solve. */
    int recoveryAttempts = 0;
    /** Ladder rung counts: KKT regularization bumps, step-length
     *  backoffs, and warm-start resets (cold restarts). */
    int regularizationBumps = 0;
    int stepBackoffs = 0;
    int coldRestarts = 0;

    /** Numeric-integrity report of the fixed-point accelerator path
     *  for this solve: saturation/div-by-zero deltas, peak magnitude,
     *  injected faults, golden cross-check verdicts. All zero when
     *  MpcOptions::fixedPointTapes is off. */
    NumericHealth numeric;

    /** Ring of the last MpcOptions::solveTraceCapacity iterations of
     *  this solve (residuals, barrier, steps, regularization, ladder
     *  activity); see mpc/solve_trace.hh and formatSolveTrace(). */
    SolveTrace trace;

    /**
     * Reset every per-solve field while keeping the trace ring's
     * storage. solve() calls this instead of reassigning a fresh
     * SolveStats so the warm path stays allocation-free.
     */
    void resetForSolve()
    {
        iterations = 0;
        converged = false;
        objective = 0.0;
        eqResidual = 0.0;
        compAverage = 0.0;
        riccatiFlops = 0;
        lineSearchEvals = 0;
        solveSeconds = 0.0;
        heapAllocations = 0;
        status = SolveStatus::Unsolved;
        recoveryAttempts = 0;
        regularizationBumps = 0;
        stepBackoffs = 0;
        coldRestarts = 0;
        numeric = NumericHealth();
        trace.clear();
    }
};

/** The interior-point MPC solver. */
class IpmSolver
{
  public:
    IpmSolver(const dsl::ModelSpec &model, const MpcOptions &options);

    /** Result of one controller invocation. */
    struct Result
    {
        Vector u0;          //!< First control of the optimized plan.
        bool converged = false;
        int iterations = 0;
        double objective = 0.0;
        /** Structured outcome; u0 is only the optimized plan's first
         *  control when statusUsable(status). On failure statuses u0
         *  holds the last finite command (see solve()). */
        SolveStatus status = SolveStatus::Unsolved;
        /** Set by the control layer (Controller/simulate) when u0 was
         *  replaced by the backup command — the time-shifted tail of
         *  the previous accepted plan (mpc/failsafe.hh). */
        bool degraded = false;
    };

    /**
     * Solve the MPC problem from the measured state and current
     * reference values; warm-starts from the previous invocation.
     * Returns a reference to per-instance storage (valid until the
     * next solve) so the steady-state path stays allocation-free;
     * copy-assign it to keep a snapshot.
     *
     * Failsafe contract: after construction, solve() never throws on
     * numeric input. Malformed states/references, failed KKT
     * factorizations, divergence, and deadline expiry all surface as
     * Result::status (with recovery attempts recorded in SolveStats),
     * and Result::u0 is always finite. A BadInput refusal leaves the
     * warm start untouched; NumericFailure/Diverged drop it so the
     * next call cold-starts.
     */
    const Result &solve(const Vector &x0, const Vector &ref);

    /**
     * Solve with per-stage references: refs[k] applies at horizon
     * stage k (refs[N] at the terminal stage). This is how a
     * trajectory-tracking task feeds the future reference trajectory
     * to the controller; refs.size() must be horizon + 1.
     */
    const Result &solve(const Vector &x0, const std::vector<Vector> &refs);

    /** Drop the warm start (e.g. after a large disturbance). */
    void reset() { warm_ = false; }

    /** Runtime deadline control; see MpcProblem::setSolveDeadline. */
    void setSolveDeadline(double seconds)
    {
        problem_.setSolveDeadline(seconds);
    }

    /** Runtime iteration-cap control; see MpcProblem::setMaxIterations. */
    void setMaxIterations(int iterations)
    {
        problem_.setMaxIterations(iterations);
    }

    /** Attach a fault hook to the fixed-point tape path; see
     *  MpcProblem::setTapeFaultHook. */
    void setTapeFaultHook(MpcProblem::TapeFaultHook hook)
    {
        problem_.setTapeFaultHook(std::move(hook));
    }

    const MpcProblem &problem() const { return problem_; }
    const SolveStats &lastStats() const { return stats_; }

    /** Planned trajectories from the last solve. */
    const std::vector<Vector> &stateTrajectory() const { return xs_; }
    const std::vector<Vector> &inputTrajectory() const { return us_; }

    /**
     * Serialize the resumable solver state: the warm-start flag, the
     * state/input trajectories, the per-block slacks and duals the
     * warm shift reads, and the last Result. Everything else the solve
     * loop touches lives in the pre-sized workspace and is recomputed,
     * so a restored solver's next solve() is bitwise-identical to the
     * one an uninterrupted solver would have run.
     */
    void checkpoint(support::CheckpointWriter &w) const;

    /**
     * Restore state written by checkpoint() into a solver constructed
     * from the same model and options. Returns false — with the warm
     * start dropped, equivalent to a cold reset() — when the payload
     * is short or its shapes disagree with this solver's layout.
     */
    bool restore(support::CheckpointReader &r);

  private:
    /** Per-stage slack/dual block. */
    struct IneqBlock
    {
        std::vector<int> rows; //!< Active row indices into the tape rows.
        Vector h;              //!< Current h values (selected rows).
        Matrix hx;             //!< Jacobian w.r.t. x.
        Matrix hu;             //!< Jacobian w.r.t. u (running only).
        Vector s;              //!< Slacks.
        Vector lam;            //!< Duals.
        Vector ds;             //!< Slack step.
        Vector dlam;           //!< Dual step.
    };

    /**
     * Every buffer the solve loop writes, pre-sized at construction
     * and reused across iterations and invocations. Nothing in here
     * carries state between solves; it exists purely to keep the hot
     * path off the heap.
     */
    struct SolverWorkspace
    {
        std::vector<StageQp> stages;  //!< N condensed stage QPs.
        std::vector<StageEval> dyn;   //!< N dynamics evaluations.
        StageEval costEval;
        StageEval ineqEval;
        std::vector<Vector> qv0;      //!< Cost-only x gradients.
        std::vector<Vector> rv0;      //!< Cost-only u gradients.
        Matrix qn;                    //!< Terminal Hessian.
        Vector qnv0;                  //!< Terminal cost-only gradient.
        Vector qnv;                   //!< Terminal gradient + barrier.
        std::vector<Vector> yblk;     //!< Barrier target per block.
        Vector dx0;                   //!< x0 - xs[0].
        Vector hdz;                   //!< Constraint-row step scratch.
        std::vector<Vector> trialXs;  //!< Line-search trial states.
        std::vector<Vector> trialUs;  //!< Line-search trial inputs.
        std::vector<Vector> trialS;   //!< Line-search trial slacks.
        std::vector<Vector> trialLam; //!< Line-search trial duals.
        Vector meritDyn;              //!< Merit dynamics scratch.
        Vector meritH;                //!< Merit constraint scratch.
        std::vector<Vector> refsScratch; //!< Constant-ref broadcast.
        RiccatiWorkspace riccati;
        DenseKktWorkspace dense;
        RiccatiSolution sol;          //!< Newton step of this iterate.
    };

    void initializeTrajectory(const Vector &x0,
                              const std::vector<Vector> &refs);
    /** Initialize slacks/duals; warm invocations shift the previous
     *  solve's values by one stage (using the row maps precomputed in
     *  the constructor) and return a matching barrier. */
    double initializeSlacks(const std::vector<Vector> &refs,
                            double mu_init);
    void evaluateIneq(IneqBlock &blk, const StageEval &eval) const;
    double meritFunction(const std::vector<Vector> &xs,
                         const std::vector<Vector> &us,
                         const std::vector<Vector> &slacks,
                         const Vector &x0,
                         const std::vector<Vector> &refs, double mu,
                         double rho);

    MpcProblem problem_;
    bool warm_ = false;
    std::vector<Vector> xs_; //!< N+1 states.
    std::vector<Vector> us_; //!< N inputs.
    std::vector<IneqBlock> ineq_; //!< N running blocks + 1 terminal.
    SolveStats stats_;
    Result result_;
    SolverWorkspace ws_;
    std::vector<int> full_run_rows_;   //!< 0..nh_run-1.
    std::vector<int> stage0_run_rows_; //!< Rows enforceable at fixed x_0.
    std::vector<int> term_rows_;       //!< 0..nh_term-1.

    // Warm-start shift maps, precomputed once: position of each
    // destination row in its warm-source block (-1 when absent).
    std::vector<int> stage0_in_full_; //!< Stage-0 row -> full-block pos.
    std::vector<int> stage0_in_term_; //!< Stage-0 row -> terminal pos.
    std::vector<int> full_in_term_;   //!< Full row -> terminal pos.
};

} // namespace robox::mpc

#endif // ROBOX_MPC_IPM_HH
