/**
 * @file
 * Graceful degradation helpers for the control layer.
 *
 * The solver reports structured SolveStatus outcomes (mpc/status.hh)
 * instead of throwing; this file supplies the policy side: what to
 * command the actuators when a solve is not usable. The answer —
 * standard in real-time MPC deployments (TinyMPC-style embedded
 * solvers use the same discipline) — is the time-shifted tail of the
 * last accepted plan: at the instant solve k fails, the plan accepted
 * at step k-1 already contains an input intended for the current
 * period, so BackupPlan replays it and keeps advancing along the tail
 * for consecutive failures, holding the final input (clamped to the
 * actuator box) once the tail is exhausted.
 *
 * SolverHealth aggregates solve outcomes and latency into the
 * support/stats framework so long-running fleets can report status
 * counts and p50/p99 solve time in the same greppable format as the
 * accelerator simulator.
 */

#ifndef ROBOX_MPC_FAILSAFE_HH
#define ROBOX_MPC_FAILSAFE_HH

#include <vector>

#include "dsl/model_spec.hh"
#include "linalg/matrix.hh"
#include "mpc/ipm.hh"
#include "mpc/status.hh"
#include "support/checkpoint.hh"
#include "support/stats.hh"

namespace robox::mpc
{

/**
 * Backup-command store: the time-shifted tail of the last accepted
 * plan. Not thread-safe; one instance per controlled robot.
 */
class BackupPlan
{
  public:
    /** Binds the actuator box the backup commands are clamped to. */
    explicit BackupPlan(const dsl::ModelSpec &model);

    /**
     * Record an accepted plan (the solver's N-stage input trajectory)
     * and reset the degradation streak. Storage is reused, so the
     * steady-state accept path performs no heap allocation once the
     * plan shape is stable.
     */
    void accept(const std::vector<Vector> &inputs);

    /**
     * The command to issue for the current (failed) period: the next
     * unused input of the stored tail, clamped to the actuator box,
     * advancing one stage per call. Falls back to holding the tail's
     * last input, and to the box-projected zero command when no plan
     * was ever accepted. Increments the degradation streak.
     */
    const Vector &command();

    /**
     * Advance the tail cursor by `stages` without issuing a command,
     * clamped to the final stage. Used by the link layer when a plan
     * is delivered late: the stages that elapsed while the message was
     * in flight were (open-loop) consumed by the plant, so the next
     * command() must resume that many stages into the tail.
     */
    void skip(std::size_t stages);

    /** True once accept() has stored at least one plan. */
    bool available() const { return !plan_.empty(); }

    /**
     * Distinct tail stages still unreplayed before command() pins to
     * the plan's final input: how much genuine open-loop plan is left.
     * 0 when no plan is stored or the cursor reached the last stage.
     */
    std::size_t remainingTail() const
    {
        if (plan_.empty())
            return 0;
        return plan_.size() - 1 - std::min(cursor_, plan_.size() - 1);
    }

    /** Distinct tail stages consumed since the last accept(): how deep
     *  into open-loop execution this plan is. Unlike
     *  consecutiveDegraded(), stops growing once the tail is pinned to
     *  its final stage. */
    std::size_t stagesReplayed() const
    {
        return plan_.empty() || cursor_ == 0 ? 0 : cursor_ - 1;
    }

    /** Backup commands issued since the last accept(). */
    int consecutiveDegraded() const { return consecutive_; }

    /** Total backup commands issued over this plan's lifetime. */
    int totalDegraded() const { return total_; }

    /** Forget the stored plan and the streak (e.g. after reset()). */
    void clear();

    /** Serialize the stored tail, cursor, and streak counters. */
    void checkpoint(support::CheckpointWriter &w) const;

    /** Restore state written by checkpoint(); false on a short or
     *  mismatched payload (the plan is left cleared in that case). */
    bool restore(support::CheckpointReader &r);

  private:
    const dsl::ModelSpec *model_;
    std::vector<Vector> plan_; //!< Last accepted input trajectory.
    std::size_t cursor_ = 0;   //!< Next tail stage to replay.
    int consecutive_ = 0;
    int total_ = 0;
    Vector command_;           //!< Clamped command storage.
};

/**
 * Aggregated solver-health statistics for a run: per-status solve
 * counts, recovery-ladder activity, and a solve-latency histogram
 * whose percentiles (support/stats Histogram::percentile) are what a
 * deployment uses to pick MpcOptions::solveDeadlineSeconds.
 */
class SolverHealth
{
  public:
    /**
     * @param name Stat-group name (e.g. "solver_health").
     * @param latency_hi Upper edge of the latency histogram, seconds.
     */
    explicit SolverHealth(const std::string &name,
                          double latency_hi = 0.05);

    /** Record one solve outcome. */
    void record(const SolveStats &stats);

    /** Record a control-layer backup-command substitution. */
    void recordDegraded() { ++degraded_; }

    std::uint64_t solves() const
    {
        return static_cast<std::uint64_t>(solves_.value());
    }
    double statusCount(SolveStatus status) const;
    const stats::Histogram &latency() const { return latency_; }

    /** Render the group (gem5-style aligned dump). */
    std::string dump() const { return group_.dump(); }
    void reset() { group_.resetAll(); }

    /** Serialize every counter and the latency histogram. */
    void checkpoint(support::CheckpointWriter &w) const;

    /** Restore state written by checkpoint(); false on a short or
     *  mismatched payload. */
    bool restore(support::CheckpointReader &r);

  private:
    stats::StatGroup group_;
    stats::Scalar solves_;
    stats::Scalar converged_;
    stats::Scalar maxIterations_;
    stats::Scalar deadlineMisses_;
    stats::Scalar numericFailures_;
    stats::Scalar diverged_;
    stats::Scalar badInput_;
    stats::Scalar numericDegraded_;
    stats::Scalar accelFaults_;
    stats::Scalar degradedBudget_;
    stats::Scalar servedFromBackup_;
    stats::Scalar shed_;
    stats::Scalar recoveryAttempts_;
    stats::Scalar coldRestarts_;
    stats::Scalar degraded_;
    stats::Scalar saturations_;
    stats::Scalar divByZeros_;
    stats::Scalar faultsInjected_;
    // Self-checking execution (MpcOptions::accelSelfCheck): on-line
    // detections and recovery-ladder activity, from
    // SolveStats::numeric.selfCheck.
    stats::Scalar parityErrors_;
    stats::Scalar watchdogTrips_;
    stats::Scalar accelReexecutions_;
    stats::Scalar accelReloads_;
    stats::Scalar accelCpuFallbacks_;
    stats::Histogram latency_;
};

} // namespace robox::mpc

#endif // ROBOX_MPC_FAILSAFE_HH
