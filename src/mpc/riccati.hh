/**
 * @file
 * Stagewise (Riccati) factorization of the MPC KKT system.
 *
 * The interior-point Newton step (Eq. 6 of the paper) is a sparse linear
 * system whose block-tridiagonal structure follows the horizon. Like the
 * HPMPC solver the paper uses as its CPU baseline, we factor it with a
 * backward Riccati recursion of dense stage-sized Cholesky
 * factorizations plus forward/backward substitutions, making the solve
 * linear in the horizon length and cubic only in the stage dimensions.
 */

#ifndef ROBOX_MPC_RICCATI_HH
#define ROBOX_MPC_RICCATI_HH

#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"

namespace robox::mpc
{

/** One stage of the condensed Newton/LQR subproblem. */
struct StageQp
{
    Matrix a;  //!< Dynamics Jacobian dF/dx (nx x nx).
    Matrix b;  //!< Dynamics Jacobian dF/du (nx x nu).
    Vector c;  //!< Dynamics residual F(x_k, u_k) - x_{k+1} (nx).
    Matrix q;  //!< Hessian block d2/dx2 (nx x nx).
    Matrix r;  //!< Hessian block d2/du2 (nu x nu).
    Matrix s;  //!< Hessian cross block d2/du dx (nu x nx).
    Vector qv; //!< Gradient w.r.t. x (nx).
    Vector rv; //!< Gradient w.r.t. u (nu).
};

/** Solution of the stagewise QP. */
struct RiccatiSolution
{
    std::vector<Vector> dx; //!< State steps, size N+1.
    std::vector<Vector> du; //!< Input steps, size N.
    double regularization = 0.0; //!< Total Levenberg shift applied.
    std::uint64_t flops = 0;     //!< Approximate floating-point ops.
};

/**
 * Solve the equality-constrained QP
 *
 *   min  sum_k 1/2 [dx;du]' [Q S'; S R] [dx;du] + qv'dx + rv'du
 *        + 1/2 dx_N' Qn dx_N + qn'dx_N
 *   s.t. dx_{k+1} = A_k dx_k + B_k du_k + c_k,  dx_0 given
 *
 * via backward Riccati recursion with regularized Cholesky on the input
 * Hessians, then a forward rollout.
 */
RiccatiSolution solveRiccati(const std::vector<StageQp> &stages,
                             const Matrix &qn, const Vector &qnv,
                             const Vector &dx0,
                             double initial_regularization = 1e-8);

} // namespace robox::mpc

#endif // ROBOX_MPC_RICCATI_HH
