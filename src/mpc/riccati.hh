/**
 * @file
 * Stagewise (Riccati) factorization of the MPC KKT system.
 *
 * The interior-point Newton step (Eq. 6 of the paper) is a sparse linear
 * system whose block-tridiagonal structure follows the horizon. Like the
 * HPMPC solver the paper uses as its CPU baseline, we factor it with a
 * backward Riccati recursion of dense stage-sized Cholesky
 * factorizations plus forward/backward substitutions, making the solve
 * linear in the horizon length and cubic only in the stage dimensions.
 */

#ifndef ROBOX_MPC_RICCATI_HH
#define ROBOX_MPC_RICCATI_HH

#include <cstdint>
#include <vector>

#include "linalg/cholesky.hh"
#include "linalg/matrix.hh"

namespace robox::mpc
{

/** One stage of the condensed Newton/LQR subproblem. */
struct StageQp
{
    Matrix a;  //!< Dynamics Jacobian dF/dx (nx x nx).
    Matrix b;  //!< Dynamics Jacobian dF/du (nx x nu).
    Vector c;  //!< Dynamics residual F(x_k, u_k) - x_{k+1} (nx).
    Matrix q;  //!< Hessian block d2/dx2 (nx x nx).
    Matrix r;  //!< Hessian block d2/du2 (nu x nu).
    Matrix s;  //!< Hessian cross block d2/du dx (nu x nx).
    Vector qv; //!< Gradient w.r.t. x (nx).
    Vector rv; //!< Gradient w.r.t. u (nu).
};

/** Solution of the stagewise QP. */
struct RiccatiSolution
{
    std::vector<Vector> dx; //!< State steps, size N+1.
    std::vector<Vector> du; //!< Input steps, size N.
    double regularization = 0.0; //!< Total Levenberg shift applied.
    std::uint64_t flops = 0;     //!< Approximate floating-point ops.
    /** Outcome of the factorization that produced the steps. Set by
     *  the value-returning convenience wrappers (which used to abort
     *  on failure); when not Ok the steps are unspecified and must be
     *  discarded. The workspace overloads report the same verdict via
     *  their return value. */
    FactorStatus status = FactorStatus::Ok;
};

/**
 * Pre-sized scratch for the backward recursion. Owned by the caller
 * (one per solver instance) and reused across iterations so the warm
 * solve path performs no heap allocation; see the workspace-reuse
 * discipline in ARCHITECTURE.md.
 */
struct RiccatiWorkspace
{
    Matrix p;    //!< Cost-to-go Hessian P_k.
    Vector pv;   //!< Cost-to-go gradient p_k.
    Matrix pa;   //!< P A.
    Matrix pb;   //!< P B.
    Vector pc;   //!< p + P c.
    Matrix fxx;  //!< Q + A' P A.
    Matrix fux;  //!< S + B' P A.
    Matrix fuu;  //!< R + B' P B.
    Vector fx;   //!< q + A' (p + P c).
    Vector fu;   //!< r + B' (p + P c).
    Matrix l;    //!< Cholesky factor of F_uu.
    std::vector<Matrix> gainK; //!< Feedback gains, size N.
    std::vector<Vector> gainD; //!< Feedforward terms, size N.

    /** Size every buffer for the given dimensions (idempotent). */
    void resize(std::size_t n_stages, std::size_t nx, std::size_t nu);
};

/**
 * Allocation-free overload: factors with the caller's workspace and
 * writes the steps into sol's pre-sized buffers (resizing them only on
 * first use). sol.flops and sol.regularization are reset each call.
 *
 * Never throws on numeric input: when a stage Hessian cannot be
 * factored even by the capped regularization ladder (NaN/Inf data),
 * the recursion stops and the failure status is returned; sol's steps
 * are unspecified and must be discarded by the caller.
 */
FactorStatus solveRiccati(const std::vector<StageQp> &stages,
                          const Matrix &qn, const Vector &qnv,
                          const Vector &dx0,
                          double initial_regularization,
                          RiccatiWorkspace &ws, RiccatiSolution &sol);

/**
 * Solve the equality-constrained QP
 *
 *   min  sum_k 1/2 [dx;du]' [Q S'; S R] [dx;du] + qv'dx + rv'du
 *        + 1/2 dx_N' Qn dx_N + qn'dx_N
 *   s.t. dx_{k+1} = A_k dx_k + B_k du_k + c_k,  dx_0 given
 *
 * via backward Riccati recursion with regularized Cholesky on the input
 * Hessians, then a forward rollout.
 */
RiccatiSolution solveRiccati(const std::vector<StageQp> &stages,
                             const Matrix &qn, const Vector &qnv,
                             const Vector &dx0,
                             double initial_regularization = 1e-8);

} // namespace robox::mpc

#endif // ROBOX_MPC_RICCATI_HH
