/**
 * @file
 * Implementation of the sensor-input plausibility gate.
 */

#include "mpc/sensor_gate.hh"

#include <cmath>

#include "mpc/checkpoint_io.hh"

namespace robox::mpc
{

namespace
{

/** Tolerated excursion beyond one finite bound pair. With both bounds
 *  finite the margin scales the span; one-sided boxes scale the
 *  magnitude of the finite bound (floored at 1 so tight-near-zero
 *  bounds still get a usable tolerance). */
double
rangeTolerance(double lower, double upper, double margin)
{
    if (std::isfinite(lower) && std::isfinite(upper))
        return margin * (upper - lower);
    double finite = std::isfinite(lower) ? lower : upper;
    return margin * std::max(1.0, std::abs(finite));
}

} // namespace

const char *
toString(SensorVerdict verdict)
{
    switch (verdict) {
      case SensorVerdict::Ok: return "ok";
      case SensorVerdict::NonFinite: return "non-finite";
      case SensorVerdict::OutOfRange: return "out-of-range";
      case SensorVerdict::Jump: return "jump";
      case SensorVerdict::Frozen: return "frozen";
    }
    return "unknown";
}

SensorGate::SensorGate(const dsl::ModelSpec &model,
                       const MpcOptions &options)
    : model_(&model),
      range_margin_(options.sensorRangeMargin),
      jump_threshold_(options.sensorJumpThreshold),
      frozen_periods_(options.sensorFrozenPeriods)
{
}

SensorVerdict
SensorGate::check(const Vector &x)
{
    const int nx = model_->nx();
    SensorVerdict verdict = SensorVerdict::Ok;

    // 1. Finiteness. A NaN measurement carries no information, so it
    // also breaks the frozen-repeat chain rather than extending it.
    for (int i = 0; i < nx && verdict == SensorVerdict::Ok; ++i)
        if (!std::isfinite(x[i]))
            verdict = SensorVerdict::NonFinite;
    if (verdict != SensorVerdict::Ok) {
        frozen_streak_ = 0;
        last_verdict_ = verdict;
        ++rejected_;
        return verdict;
    }

    // 2. Range against the model's state box plus margin.
    if (range_margin_ >= 0.0) {
        for (int i = 0; i < nx && verdict == SensorVerdict::Ok; ++i) {
            const double lo = model_->stateLower[i];
            const double hi = model_->stateUpper[i];
            if (!std::isfinite(lo) && !std::isfinite(hi))
                continue;
            const double tol = rangeTolerance(lo, hi, range_margin_);
            if (x[i] < lo - tol || x[i] > hi + tol)
                verdict = SensorVerdict::OutOfRange;
        }
    }

    // 3. Frozen: bitwise-identical to the previous measurement for
    // frozen_periods_ consecutive periods. Tracked against the raw
    // previous sample (held in baseline_ only when it was accepted),
    // so keep a dedicated streak keyed on exact repetition of the
    // jump baseline — a frozen sensor never moves the baseline either.
    if (verdict == SensorVerdict::Ok && frozen_periods_ > 0 &&
        has_baseline_) {
        bool identical = true;
        for (int i = 0; i < nx && identical; ++i)
            identical = x[i] == baseline_[i];
        if (identical) {
            if (++frozen_streak_ >= frozen_periods_)
                verdict = SensorVerdict::Frozen;
        } else {
            frozen_streak_ = 0;
        }
    }

    // 4. Jump relative to the last accepted measurement. A persistent
    // jump re-homes: the robot genuinely is somewhere new.
    if (verdict == SensorVerdict::Ok && jump_threshold_ > 0.0 &&
        has_baseline_) {
        double jump = 0.0;
        for (int i = 0; i < nx; ++i)
            jump = std::max(jump, std::abs(x[i] - baseline_[i]));
        if (jump > jump_threshold_) {
            if (++jump_streak_ >= kJumpRehomePeriods)
                jump_streak_ = 0; // Re-home: accept below.
            else
                verdict = SensorVerdict::Jump;
        } else {
            jump_streak_ = 0;
        }
    }

    if (verdict == SensorVerdict::Ok) {
        if (baseline_.size() != static_cast<std::size_t>(nx))
            baseline_.resize(static_cast<std::size_t>(nx));
        baseline_.copyFrom(x);
        has_baseline_ = true;
    } else {
        ++rejected_;
    }
    last_verdict_ = verdict;
    return verdict;
}

void
SensorGate::checkpoint(support::CheckpointWriter &w) const
{
    writeVector(w, baseline_);
    w.boolean(has_baseline_);
    w.i32(frozen_streak_);
    w.i32(jump_streak_);
    w.u32(static_cast<std::uint32_t>(last_verdict_));
    w.u64(rejected_);
}

bool
SensorGate::restore(support::CheckpointReader &r)
{
    std::uint32_t verdict = 0;
    if (!readVector(r, baseline_) || !r.boolean(&has_baseline_) ||
        !r.i32(&frozen_streak_) || !r.i32(&jump_streak_) ||
        !r.u32(&verdict) || !r.u64(&rejected_) ||
        verdict > static_cast<std::uint32_t>(SensorVerdict::Frozen)) {
        reset();
        rejected_ = 0;
        return false;
    }
    last_verdict_ = static_cast<SensorVerdict>(verdict);
    return true;
}

void
SensorGate::reset()
{
    has_baseline_ = false;
    frozen_streak_ = 0;
    jump_streak_ = 0;
    last_verdict_ = SensorVerdict::Ok;
}

} // namespace robox::mpc
