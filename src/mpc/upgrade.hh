/**
 * @file
 * Safe live controller upgrades: shadow validation, canary rollout,
 * automatic rollback.
 *
 * A serving BatchController can only ever be as good as the program it
 * booted with unless controllers can be replaced in flight. The
 * UpgradeManager stages a candidate controller (a new model/option set
 * plus its compiled program image, CRC-verified before anything else)
 * through a deterministic virtual-time rollout:
 *
 *   schedule -> Shadow  (candidate solves copies of the live inputs
 *                        for K periods; zero effect on commands)
 *            -> Canary  (a deterministic splitmix64-selected robot
 *                        fraction serves on the candidate; the
 *                        incumbent keeps shadow-solving those robots
 *                        so rollback is seamless)
 *            -> Committed (fleet-wide switch)
 *
 * with automatic rollback to the incumbent — and rejection while still
 * shadowing — on command divergence beyond the warn/fail bands, on a
 * bad-solve (non-usable / NumericDegraded / AccelFault) rate
 * regression, or on an EWMA solve-cost (latency budget) violation.
 * Because the non-serving version keeps shadow-solving every admitted
 * robot during Shadow and Canary, both versions stay warm: a switch in
 * either direction reuses the per-robot backup-plan tail and never
 * costs a robot a command.
 *
 * Determinism contract: every decision (divergence scoring, guard
 * evaluation, canary selection, phase transitions) is folded on the
 * coordinating thread in robot-index order from per-robot scratch
 * slots the workers filled, so a campaign driven through a virtual-
 * time cost hook replays bitwise across runs and thread counts. The
 * full manager state rides inside BatchController::checkpoint();
 * restoring an in-flight upgrade requires re-supplying the candidate
 * (whose image and shape must match the checkpoint) because solver
 * instances cannot be rebuilt from bytes alone.
 */

#ifndef ROBOX_MPC_UPGRADE_HH
#define ROBOX_MPC_UPGRADE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mpc/ipm.hh"
#include "mpc/options.hh"
#include "mpc/status.hh"
#include "mpc/timeline.hh"
#include "support/checkpoint.hh"

namespace robox::mpc
{

/** Where a scheduled upgrade currently stands. */
enum class UpgradePhase : std::uint8_t
{
    Idle = 0,   //!< No candidate staged.
    Shadow,     //!< Candidate solving copies; incumbent serves all.
    Canary,     //!< Canary fraction serves on the candidate.
    Committed,  //!< Fleet-wide on the candidate.
    RolledBack, //!< A guard tripped during Canary; incumbent restored.
    Rejected,   //!< A guard tripped during Shadow; candidate dropped.
};

const char *toString(UpgradePhase phase);

/** Outcome of BatchController::scheduleUpgrade(). */
enum class UpgradeScheduleStatus : std::uint8_t
{
    Scheduled = 0, //!< Accepted; the shadow phase begins next batch.
    BadImage,      //!< verifyImage rejected the candidate's image.
    Incompatible,  //!< Candidate shape differs from the incumbent's.
    Busy,          //!< An upgrade is in flight or already committed.
};

const char *toString(UpgradeScheduleStatus status);

/**
 * A candidate controller: the model and options the per-robot solvers
 * are built from, plus the compiled program image that would be
 * flashed to the accelerator. The image is the untrusted artifact of
 * the deployment pipeline, so it is CRC-verified (verifyImage) before
 * the candidate is staged; an empty image is rejected as truncated.
 */
struct UpgradeCandidate
{
    dsl::ModelSpec model;
    MpcOptions options;
    std::vector<std::uint8_t> image;

    /**
     * Virtual-time cost multiplier applied to the candidate's modeled
     * solve cost while a CostHook drives the admission clock (without
     * a hook, measured wall time is used directly and this is
     * ignored). A campaign models a costlier candidate by setting it
     * above 1, which is what the latency guard then sees.
     */
    double modeledCostScale = 1.0;
};

/** Rollout accounting, embedded in BatchReport and batchMetricsJson.
 *  All counters are lifetime sums across every scheduled candidate. */
struct UpgradeReport
{
    /** Serving controller version: 1 = incumbent, 2 = candidate
     *  (after commit). */
    std::uint32_t version = 1;
    /** Current UpgradePhase as its integer value. */
    std::uint8_t phase = 0;

    std::uint64_t scheduled = 0;       //!< schedule() attempts.
    std::uint64_t rejectedImages = 0;  //!< verifyImage refusals.
    std::uint64_t rejectedIncompatible = 0; //!< Shape refusals.
    std::uint64_t committed = 0;       //!< Fleet-wide commits.
    std::uint64_t rolledBack = 0;      //!< Canary-phase rollbacks.
    std::uint64_t rejectedCandidates = 0; //!< Shadow-phase rejections.

    std::uint64_t shadowSolves = 0; //!< Candidate/incumbent pairs run.
    std::uint64_t canaryRobots = 0; //!< Size of the last canary set.
    std::uint64_t divergenceWarns = 0; //!< Components past the warn band.
    std::uint64_t divergenceFails = 0; //!< Components past the fail band.
    double maxDivergence = 0.0; //!< Largest |candidate - incumbent|.

    /** Fleet-level EWMA modeled solve cost per version, seconds. */
    double incumbentCostEwma = 0.0;
    double candidateCostEwma = 0.0;

    /** Guard trips by reason (reject + rollback combined). */
    std::uint64_t rollbackDivergence = 0;
    std::uint64_t rollbackFaultRate = 0;
    std::uint64_t rollbackLatency = 0;
};

/**
 * The rollout state machine. Owned and driven by BatchController; see
 * the file comment for the phase diagram and determinism contract.
 * The upgrade staging knobs (periods, bands, guards, canary seed) are
 * read from the *incumbent* controller's MpcOptions — the candidate's
 * options only configure the candidate solvers themselves.
 */
class UpgradeManager
{
  public:
    /** An upgrade-category timeline marker queued for the controller
     *  to stamp (virtual time, batch index) and record. */
    struct PendingMarker
    {
        TimelineMarker kind = TimelineMarker::UpgradeShadowStart;
        std::uint32_t robot = 0;
    };

    UpgradeManager(const MpcOptions &incumbent_options,
                   std::size_t num_robots);

    /**
     * Stage a candidate: verify its image, build one solver per robot,
     * and check its problem shape (nx/nu/nref/horizon) against the
     * incumbent's — a shape change is a redeploy, not a live upgrade.
     * On success the shadow phase begins with the next batch. Refused
     * with Busy while an upgrade is in flight or committed; after a
     * rejection or rollback a new candidate may be scheduled.
     */
    UpgradeScheduleStatus schedule(const UpgradeCandidate &candidate,
                                   const MpcProblem &incumbent);

    /** Operator-initiated abort: reject a shadowing candidate or roll
     *  back a canarying one. No-op in any other phase. */
    void abortToIncumbent();

    UpgradePhase phase() const { return phase_; }

    /** True while both versions solve every admitted robot (Shadow or
     *  Canary): the controller must run the shadow solve and call
     *  recordPair(). */
    bool doubleSolve() const
    {
        return phase_ == UpgradePhase::Shadow ||
               phase_ == UpgradePhase::Canary;
    }

    /** True when robot i's commands come from the candidate. */
    bool servesCandidate(std::size_t i) const
    {
        return serving_[i] != 0;
    }

    /** 1 = incumbent, 2 = candidate. */
    std::uint32_t servingVersion(std::size_t i) const
    {
        return serving_[i] != 0 ? 2 : 1;
    }

    /** Robot i's candidate solver; valid in Shadow/Canary/Committed. */
    IpmSolver &candidateSolver(std::size_t i)
    {
        return *candidate_solvers_[i];
    }

    const MpcOptions &candidateOptions() const
    {
        return candidate_.options;
    }

    /** Modeled-cost multiplier for robot i's *serving* solve under a
     *  cost hook (candidate robots carry modeledCostScale). */
    double costScale(std::size_t i) const
    {
        return serving_[i] != 0 ? candidate_.modeledCostScale : 1.0;
    }

    /**
     * Worker-side (robot-slot-isolated) record of one serving/shadow
     * solve pair: divergence is scored here, guards are evaluated
     * later by finishPeriod() on the coordinator. `shadow` is null
     * when the shadow solve threw (the candidate is charged a bad
     * solve; the serving result is never perturbed).
     */
    void recordPair(std::size_t i, const IpmSolver::Result &serving,
                    double serving_seconds,
                    const IpmSolver::Result *shadow,
                    double shadow_seconds);

    /**
     * Coordinator fold, once per batch after the cost model updated:
     * accumulate divergence and per-version cost/fault samples in
     * robot-index order, evaluate the guards, and run the phase
     * transitions. `batch_cost[i]` is the controller's modeled cost of
     * robot i's serving solve; `hooked` says a CostHook drives it (the
     * shadow's modeled cost is then derived from it via
     * modeledCostScale instead of re-invoking the hook, keeping hook
     * call counts — and thus any stateful hook — unperturbed).
     */
    void finishPeriod(const std::vector<double> &batch_cost,
                      bool hooked);

    const UpgradeReport &report() const { return report_; }

    /** Markers queued since the last drain (coordinator only). */
    const std::vector<PendingMarker> &pendingMarkers() const
    {
        return pending_markers_;
    }
    void clearPendingMarkers() { pending_markers_.clear(); }

    /** Drop candidate-solver warm starts (BatchController::resetAll). */
    void resetSolvers();

    void checkpoint(support::CheckpointWriter &w) const;

    /**
     * Restore a manager checkpoint. When the stored phase still holds
     * candidate solvers (Shadow/Canary/Committed), `candidate` must be
     * non-null and match the stored identity (image bytes, model
     * shape, modeledCostScale); the solvers are rebuilt from it and
     * their warm state restored. Returns false on any mismatch or
     * short payload; the caller is expected to cold-start.
     */
    bool restore(support::CheckpointReader &r,
                 const UpgradeCandidate *candidate);

  private:
    /** Per-robot scratch a worker fills for its own slot only. */
    struct PairSample
    {
        std::uint8_t hasPair = 0;
        std::uint32_t warns = 0;
        std::uint32_t fails = 0;
        double maxAbs = 0.0;
        double servingSeconds = 0.0;
        double shadowSeconds = 0.0;
        std::uint8_t servingBad = 0;
        std::uint8_t shadowBad = 0;
    };

    void startShadow();
    void startCanary();
    void commit();
    /** A guard tripped: reject (Shadow) or roll back (Canary),
     *  charging the given per-reason counter. */
    void failCandidate(std::uint64_t UpgradeReport::*reason);
    void dropCandidateSolvers();
    void clearScratch();
    void queueMarker(TimelineMarker kind, std::uint32_t robot);
    bool buildSolvers(const UpgradeCandidate &candidate,
                      std::size_t num_robots);

    MpcOptions options_; //!< Incumbent options (staging knobs).
    std::size_t num_robots_;

    UpgradePhase phase_ = UpgradePhase::Idle;
    std::uint64_t phase_periods_ = 0;

    UpgradeCandidate candidate_;
    std::vector<std::unique_ptr<IpmSolver>> candidate_solvers_;
    std::vector<std::uint8_t> serving_; //!< 1 = candidate serves robot.
    std::vector<std::uint8_t> canary_;  //!< 1 = in the canary set.

    /** Per-phase fault-rate samples (reset at each phase start). */
    std::uint64_t incumbent_solves_ = 0;
    std::uint64_t incumbent_bad_ = 0;
    std::uint64_t candidate_solves_ = 0;
    std::uint64_t candidate_bad_ = 0;

    std::vector<PairSample> scratch_;
    std::vector<PendingMarker> pending_markers_;
    UpgradeReport report_;
};

} // namespace robox::mpc

#endif // ROBOX_MPC_UPGRADE_HH
