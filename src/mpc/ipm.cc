/**
 * @file
 * Implementation of the primal-dual interior-point MPC solver.
 */

#include "mpc/ipm.hh"

#include "mpc/dense_kkt.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace robox::mpc
{

namespace
{

/** Barrier curvature lam/s with an overflow guard: rows pinned hard
 *  against their bound can otherwise drive sigma to infinity in
 *  unconverged solves. */
double
cappedSigma(double lam, double s)
{
    return std::min(lam / s, 1e10);
}

/** Dual safeguard applied after each accepted step. */
constexpr double kLambdaCap = 1e10;

} // namespace

IpmSolver::IpmSolver(const dsl::ModelSpec &model, const MpcOptions &options)
    : problem_(model, options)
{
    for (int i = 0; i < problem_.numRunningIneq(); ++i) {
        full_run_rows_.push_back(i);
        if (!problem_.runningRowUsesState()[i])
            stage0_run_rows_.push_back(i);
    }
    for (int i = 0; i < problem_.numTerminalIneq(); ++i)
        term_rows_.push_back(i);
}

void
IpmSolver::initializeTrajectory(const Vector &x0,
                                const std::vector<Vector> &refs)
{
    const int n_stages = problem_.horizon();
    const int nx = problem_.nx();
    const int nu = problem_.nu();

    if (warm_ && static_cast<int>(us_.size()) == n_stages) {
        // Shift the previous plan by one step; repeat the last input.
        for (int k = 0; k + 1 < n_stages; ++k)
            us_[k] = us_[k + 1];
        xs_[0] = x0;
        for (int k = 0; k < n_stages; ++k)
            xs_[k + 1] =
                problem_.dynamicsValue(xs_[k], us_[k], refs[k]);
        return;
    }

    // Cold start: inputs at the midpoint of their finite bounds (zero
    // when unbounded), states from a rollout.
    const dsl::ModelSpec &model = problem_.model();
    Vector u_init(static_cast<std::size_t>(nu));
    for (int i = 0; i < nu; ++i) {
        double lo = model.inputLower[i];
        double hi = model.inputUpper[i];
        if (lo != -dsl::kUnbounded && hi != dsl::kUnbounded)
            u_init[i] = 0.5 * (lo + hi);
        else if (lo != -dsl::kUnbounded)
            u_init[i] = lo + 0.1;
        else if (hi != dsl::kUnbounded)
            u_init[i] = hi - 0.1;
        else
            u_init[i] = 0.0;
    }
    us_.assign(n_stages, u_init);
    xs_.assign(n_stages + 1, Vector(static_cast<std::size_t>(nx)));
    xs_[0] = x0;
    for (int k = 0; k < n_stages; ++k)
        xs_[k + 1] = problem_.dynamicsValue(xs_[k], us_[k], refs[k]);
}

void
IpmSolver::evaluateIneq(IneqBlock &blk, const StageEval &eval) const
{
    const std::size_t rows = blk.rows.size();
    blk.h = Vector(rows);
    blk.hx = Matrix(rows, eval.jx.cols());
    blk.hu = Matrix(rows, eval.ju.cols());
    for (std::size_t i = 0; i < rows; ++i) {
        int src = blk.rows[i];
        blk.h[i] = eval.value[src];
        for (std::size_t j = 0; j < eval.jx.cols(); ++j)
            blk.hx(i, j) = eval.jx(src, j);
        for (std::size_t j = 0; j < eval.ju.cols(); ++j)
            blk.hu(i, j) = eval.ju(src, j);
    }
}

double
IpmSolver::initializeSlacks(const std::vector<Vector> &refs,
                            double mu_init)
{
    const int n_stages = problem_.horizon();
    const double floor = problem_.options().slackFloor;

    bool shift = warm_ &&
                 static_cast<int>(ineq_.size()) == n_stages + 1;
    std::vector<IneqBlock> previous;
    if (shift)
        previous = ineq_;

    ineq_.assign(n_stages + 1, IneqBlock());
    StageEval eval;
    for (int k = 0; k <= n_stages; ++k) {
        IneqBlock &blk = ineq_[k];
        if (k == n_stages) {
            blk.rows = term_rows_;
            problem_.evalTerminalIneq(xs_[k], refs[k], eval);
        } else {
            blk.rows = k == 0 ? stage0_run_rows_ : full_run_rows_;
            problem_.evalRunningIneq(xs_[k], us_[k], refs[k], eval);
        }
        evaluateIneq(blk, eval);
        std::size_t rows = blk.rows.size();
        blk.s = Vector(rows);
        blk.lam = Vector(rows);
        // Warm source: the next stage of the previous plan (the same
        // stage for the terminal block).
        const IneqBlock *prev = nullptr;
        if (shift)
            prev = k < n_stages ? &previous[k + 1] : &previous[k];
        for (std::size_t i = 0; i < rows; ++i) {
            double s = std::max(floor, -blk.h[i]);
            double lam = mu_init / s;
            if (prev) {
                // Match rows by their tape-row index.
                for (std::size_t j = 0; j < prev->rows.size(); ++j) {
                    if (prev->rows[j] == blk.rows[i]) {
                        s = std::max(floor * 1e-2, prev->s[j]);
                        lam = std::max(floor * 1e-2, prev->lam[j]);
                        break;
                    }
                }
            }
            blk.s[i] = s;
            blk.lam[i] = lam;
        }
    }

    // Barrier start: for warm starts, resume near the carried-over
    // complementarity instead of re-climbing from muInit.
    double comp_sum = 0.0;
    std::size_t count = 0;
    for (const IneqBlock &blk : ineq_) {
        for (std::size_t i = 0; i < blk.rows.size(); ++i) {
            comp_sum += blk.s[i] * blk.lam[i];
            ++count;
        }
    }
    if (!shift || count == 0)
        return mu_init;
    double comp_avg = comp_sum / count;
    return std::clamp(0.5 * comp_avg, problem_.options().muMin * 10.0,
                      mu_init);
}

double
IpmSolver::meritFunction(const std::vector<Vector> &xs,
                         const std::vector<Vector> &us,
                         const std::vector<IneqBlock> &blocks,
                         const Vector &x0,
                         const std::vector<Vector> &refs, double mu,
                         double rho)
{
    const int n_stages = problem_.horizon();
    double merit = problem_.objective(xs, us, refs);
    ++stats_.lineSearchEvals;

    double infeas = 0.0;
    for (std::size_t i = 0; i < x0.size(); ++i)
        infeas += std::abs(xs[0][i] - x0[i]);
    for (int k = 0; k < n_stages; ++k) {
        Vector next = problem_.dynamicsValue(xs[k], us[k], refs[k]);
        for (std::size_t i = 0; i < next.size(); ++i)
            infeas += std::abs(next[i] - xs[k + 1][i]);
    }
    for (int k = 0; k <= n_stages; ++k) {
        const IneqBlock &blk = blocks[k];
        Vector h_full =
            k == n_stages
                ? problem_.terminalIneqValue(xs[k], refs[k])
                : problem_.runningIneqValue(xs[k], us[k], refs[k]);
        for (std::size_t i = 0; i < blk.rows.size(); ++i) {
            infeas += std::abs(h_full[blk.rows[i]] + blk.s[i]);
            if (blk.s[i] <= 0.0)
                return std::numeric_limits<double>::infinity();
            merit -= mu * std::log(blk.s[i]);
        }
    }
    return merit + rho * infeas;
}

IpmSolver::Result
IpmSolver::solve(const Vector &x0, const Vector &ref)
{
    std::vector<Vector> refs(
        static_cast<std::size_t>(problem_.horizon()) + 1, ref);
    return solve(x0, refs);
}

IpmSolver::Result
IpmSolver::solve(const Vector &x0, const std::vector<Vector> &refs)
{
    const MpcOptions &opt = problem_.options();
    robox_assert(static_cast<int>(refs.size()) ==
                 problem_.horizon() + 1);
    const int n_stages = opt.horizon;
    const int nx = problem_.nx();
    const int nu = problem_.nu();
    const int np_run = problem_.numRunningResiduals();
    const int np_term = problem_.numTerminalResiduals();

    stats_ = SolveStats();
    initializeTrajectory(x0, refs);
    double mu = initializeSlacks(refs, opt.muInit);
    std::vector<StageQp> stages(n_stages);
    std::vector<StageEval> dyn(n_stages);
    StageEval cost_eval;
    StageEval ineq_eval;

    Result result;

    // Gradient bases (cost terms only); the barrier gradient is applied
    // separately so the predictor-corrector can re-target it without
    // re-assembling the Hessians.
    std::vector<Vector> qv0(n_stages), rv0(n_stages);
    Vector qnv0(static_cast<std::size_t>(nx));
    Matrix qn(nx, nx);
    Vector qnv(static_cast<std::size_t>(nx));
    std::vector<Vector> yblk(n_stages + 1);

    // Apply a given set of barrier target vectors y to the gradients.
    auto apply_gradients = [&](std::vector<StageQp> &st_list) {
        for (int k = 0; k < n_stages; ++k) {
            StageQp &st = st_list[k];
            st.qv = qv0[k];
            st.rv = rv0[k];
            const IneqBlock &blk = ineq_[k];
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                double y = yblk[k][i];
                for (int a = 0; a < nx; ++a)
                    st.qv[a] += blk.hx(i, a) * y;
                for (int a = 0; a < nu; ++a)
                    st.rv[a] += blk.hu(i, a) * y;
            }
        }
        qnv = qnv0;
        const IneqBlock &term = ineq_[n_stages];
        for (std::size_t i = 0; i < term.rows.size(); ++i) {
            double y = yblk[n_stages][i];
            for (int a = 0; a < nx; ++a)
                qnv[a] += term.hx(i, a) * y;
        }
    };

    // Solve the structured QP with the selected backend.
    auto solve_kkt = [&](const std::vector<StageQp> &st_list,
                         const Vector &dx0) {
        RiccatiSolution sol =
            opt.kktSolver == KktSolver::Dense
                ? solveDenseKkt(st_list, qn, qnv, dx0)
                : solveRiccati(st_list, qn, qnv, dx0,
                               opt.initialRegularization);
        stats_.riccatiFlops += sol.flops;
        return sol;
    };

    // Slack/dual steps for a primal direction under barrier targets y,
    // plus the fraction-to-boundary step length.
    auto compute_steps = [&](const RiccatiSolution &sol) {
        double alpha = 1.0;
        const double tau = opt.fractionToBoundary;
        for (int k = 0; k <= n_stages; ++k) {
            IneqBlock &blk = ineq_[k];
            std::size_t rows = blk.rows.size();
            blk.ds = Vector(rows);
            blk.dlam = Vector(rows);
            if (rows == 0)
                continue;
            Vector hdz = blk.hx * sol.dx[k];
            if (k < n_stages)
                hdz += blk.hu * sol.du[k];
            for (std::size_t i = 0; i < rows; ++i) {
                double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                blk.ds[i] = -(blk.h[i] + blk.s[i]) - hdz[i];
                blk.dlam[i] =
                    sigma * hdz[i] + (yblk[k][i] - blk.lam[i]);
                if (blk.ds[i] < 0.0)
                    alpha = std::min(alpha, -tau * blk.s[i] / blk.ds[i]);
                if (blk.dlam[i] < 0.0)
                    alpha = std::min(alpha,
                                     -tau * blk.lam[i] / blk.dlam[i]);
            }
        }
        return alpha;
    };

    for (int iter = 0; iter < opt.maxIterations; ++iter) {
        // --------------------------------------------------------
        // Evaluate stage data and build the Newton/LQR subproblem.
        // --------------------------------------------------------
        double eq_residual = 0.0;
        for (int k = 0; k < n_stages; ++k) {
            problem_.evalDynamics(xs_[k], us_[k], refs[k], dyn[k]);
            StageQp &st = stages[k];
            st.a = dyn[k].jx;
            st.b = dyn[k].ju;
            st.c = dyn[k].value - xs_[k + 1];
            eq_residual = std::max(eq_residual, st.c.normInf());

            st.q = Matrix(nx, nx);
            st.r = Matrix(nu, nu);
            st.s = Matrix(nu, nx);
            qv0[k] = Vector(static_cast<std::size_t>(nx));
            rv0[k] = Vector(static_cast<std::size_t>(nu));

            if (np_run > 0) {
                problem_.evalRunningCost(xs_[k], us_[k], refs[k],
                                         cost_eval);
                const auto &w = problem_.runningWeights();
                // Gauss-Newton: H += 2 J^T W J, g += 2 J^T W r.
                for (int i = 0; i < np_run; ++i) {
                    double wi = 2.0 * w[i];
                    double ri = cost_eval.value[i];
                    for (int a = 0; a < nx; ++a) {
                        double ja = cost_eval.jx(i, a);
                        if (ja == 0.0 && ri == 0.0)
                            continue;
                        qv0[k][a] += wi * ja * ri;
                        for (int b = 0; b <= a; ++b)
                            st.q(a, b) += wi * ja * cost_eval.jx(i, b);
                    }
                    for (int a = 0; a < nu; ++a) {
                        double ja = cost_eval.ju(i, a);
                        rv0[k][a] += wi * ja * ri;
                        for (int b = 0; b <= a; ++b)
                            st.r(a, b) += wi * ja * cost_eval.ju(i, b);
                        for (int b = 0; b < nx; ++b)
                            st.s(a, b) += wi * ja * cost_eval.jx(i, b);
                    }
                }
            }

            // Barrier Hessian contributions of the stage inequalities.
            IneqBlock &blk = ineq_[k];
            if (!blk.rows.empty()) {
                problem_.evalRunningIneq(xs_[k], us_[k], refs[k],
                                         ineq_eval);
                evaluateIneq(blk, ineq_eval);
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                    for (int a = 0; a < nx; ++a) {
                        double ha = blk.hx(i, a);
                        if (ha != 0.0) {
                            for (int b = 0; b <= a; ++b)
                                st.q(a, b) += sigma * ha * blk.hx(i, b);
                        }
                    }
                    for (int a = 0; a < nu; ++a) {
                        double ha = blk.hu(i, a);
                        if (ha != 0.0) {
                            for (int b = 0; b <= a; ++b)
                                st.r(a, b) += sigma * ha * blk.hu(i, b);
                            for (int b = 0; b < nx; ++b)
                                st.s(a, b) += sigma * ha * blk.hx(i, b);
                        }
                    }
                }
            }

            // Mirror the lower triangles built above.
            for (int a = 0; a < nx; ++a)
                for (int b = a + 1; b < nx; ++b)
                    st.q(a, b) = st.q(b, a);
            for (int a = 0; a < nu; ++a)
                for (int b = a + 1; b < nu; ++b)
                    st.r(a, b) = st.r(b, a);
        }

        // Terminal stage.
        qn = Matrix(nx, nx);
        qnv0 = Vector(static_cast<std::size_t>(nx));
        if (np_term > 0) {
            problem_.evalTerminalCost(xs_[n_stages], refs[n_stages],
                                      cost_eval);
            const auto &w = problem_.terminalWeights();
            for (int i = 0; i < np_term; ++i) {
                double wi = 2.0 * w[i];
                double ri = cost_eval.value[i];
                for (int a = 0; a < nx; ++a) {
                    double ja = cost_eval.jx(i, a);
                    if (ja == 0.0 && ri == 0.0)
                        continue;
                    qnv0[a] += wi * ja * ri;
                    for (int b = 0; b <= a; ++b)
                        qn(a, b) += wi * ja * cost_eval.jx(i, b);
                }
            }
        }
        IneqBlock &term = ineq_[n_stages];
        if (!term.rows.empty()) {
            problem_.evalTerminalIneq(xs_[n_stages], refs[n_stages],
                                      ineq_eval);
            evaluateIneq(term, ineq_eval);
            for (std::size_t i = 0; i < term.rows.size(); ++i) {
                double sigma = cappedSigma(term.lam[i], term.s[i]);
                for (int a = 0; a < nx; ++a) {
                    double ha = term.hx(i, a);
                    if (ha != 0.0) {
                        for (int b = 0; b <= a; ++b)
                            qn(a, b) += sigma * ha * term.hx(i, b);
                    }
                }
            }
        }
        for (int a = 0; a < nx; ++a)
            for (int b = a + 1; b < nx; ++b)
                qn(a, b) = qn(b, a);

        // Current average complementarity (for the adaptive centering).
        double comp_now = 0.0;
        std::size_t comp_rows = 0;
        for (const IneqBlock &blk : ineq_) {
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                comp_now += blk.s[i] * blk.lam[i];
                ++comp_rows;
            }
        }
        if (comp_rows)
            comp_now /= comp_rows;

        // --------------------------------------------------------
        // Newton step: plain barrier step, or Mehrotra-style
        // predictor-corrector (affine solve -> adaptive centering ->
        // corrected solve).
        // --------------------------------------------------------
        Vector dx0 = x0 - xs_[0];
        auto barrier_targets = [&](double mu_t, bool corrector) {
            for (int k = 0; k <= n_stages; ++k) {
                const IneqBlock &blk = ineq_[k];
                yblk[k] = Vector(blk.rows.size());
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                    double y = blk.lam[i] + sigma * blk.h[i] +
                               mu_t / blk.s[i];
                    if (corrector)
                        y -= blk.ds[i] * blk.dlam[i] / blk.s[i];
                    yblk[k][i] = std::clamp(y, -1e12, 1e12);
                }
            }
        };

        RiccatiSolution sol;
        double alpha = 1.0;
        if (opt.predictorCorrector && comp_rows) {
            // Affine predictor: mu = 0.
            barrier_targets(0.0, false);
            apply_gradients(stages);
            sol = solve_kkt(stages, dx0);
            double alpha_aff = compute_steps(sol);
            // Complementarity after the full affine step.
            double comp_aff = 0.0;
            for (const IneqBlock &blk : ineq_) {
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    comp_aff += (blk.s[i] + alpha_aff * blk.ds[i]) *
                                (blk.lam[i] + alpha_aff * blk.dlam[i]);
                }
            }
            comp_aff /= comp_rows;
            double ratio = comp_now > 0.0 ? comp_aff / comp_now : 0.0;
            double centering = ratio * ratio * ratio;
            mu = std::max(opt.muMin, centering * comp_now);
            // Corrector with second-order term from the affine steps.
            barrier_targets(mu, true);
            apply_gradients(stages);
            sol = solve_kkt(stages, dx0);
            alpha = compute_steps(sol);
        } else {
            barrier_targets(mu, false);
            apply_gradients(stages);
            sol = solve_kkt(stages, dx0);
            alpha = compute_steps(sol);
        }

        double step_inf = 0.0;
        for (int k = 0; k <= n_stages; ++k)
            step_inf = std::max(step_inf, sol.dx[k].normInf());
        for (int k = 0; k < n_stages; ++k)
            step_inf = std::max(step_inf, sol.du[k].normInf());

        // --------------------------------------------------------
        // Backtracking line search on an l1 merit function.
        // --------------------------------------------------------
        double max_lam = 0.0;
        for (const IneqBlock &blk : ineq_)
            max_lam = std::max(max_lam, blk.lam.size() ? blk.lam.normInf()
                                                       : 0.0);
        double rho = 10.0 * (1.0 + max_lam);
        double merit0 =
            meritFunction(xs_, us_, ineq_, x0, refs, mu, rho);

        std::vector<Vector> trial_xs = xs_;
        std::vector<Vector> trial_us = us_;
        std::vector<IneqBlock> trial_ineq = ineq_;
        double used_alpha = alpha;
        bool accepted = false;
        for (int ls = 0; ls < 8; ++ls) {
            for (int k = 0; k <= n_stages; ++k) {
                trial_xs[k] = xs_[k] + sol.dx[k] * used_alpha;
                IneqBlock &blk = trial_ineq[k];
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    blk.s[i] = ineq_[k].s[i] + used_alpha * ineq_[k].ds[i];
                    blk.lam[i] = std::min(
                        kLambdaCap,
                        ineq_[k].lam[i] + used_alpha * ineq_[k].dlam[i]);
                }
            }
            for (int k = 0; k < n_stages; ++k)
                trial_us[k] = us_[k] + sol.du[k] * used_alpha;
            double merit = meritFunction(trial_xs, trial_us, trial_ineq,
                                         x0, refs, mu, rho);
            if (merit <= merit0 + 1e-9 * std::abs(merit0) + 1e-12) {
                accepted = true;
                break;
            }
            used_alpha *= 0.5;
        }
        // Even if the merit check failed at every trial length, take the
        // smallest step rather than stalling; the barrier keeps iterates
        // strictly feasible.
        xs_ = trial_xs;
        us_ = trial_us;
        ineq_ = trial_ineq;
        (void)accepted;

        // --------------------------------------------------------
        // Barrier update and convergence test.
        // --------------------------------------------------------
        double comp_sum = 0.0;
        std::size_t comp_count = 0;
        for (const IneqBlock &blk : ineq_) {
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                comp_sum += blk.s[i] * blk.lam[i];
                ++comp_count;
            }
        }
        double comp_avg = comp_count ? comp_sum / comp_count : 0.0;
        if (!opt.predictorCorrector) {
            mu = std::max(opt.muMin,
                          std::min(mu, opt.muShrink * comp_avg));
        }

        stats_.iterations = iter + 1;
        stats_.eqResidual = eq_residual;
        stats_.compAverage = comp_avg;

        if (step_inf * used_alpha < opt.tolerance &&
            eq_residual < 10.0 * opt.tolerance &&
            (comp_count == 0 || comp_avg < 1e-6)) {
            stats_.converged = true;
            break;
        }
    }

    stats_.objective = problem_.objective(xs_, us_, refs);
    warm_ = true;

    // The interior point method converges to the bounds from the
    // inside but an early stop can leave micro-violations; the command
    // actually issued to the actuators is projected onto their limits.
    result.u0 = us_[0];
    const dsl::ModelSpec &model = problem_.model();
    for (int i = 0; i < problem_.nu(); ++i) {
        result.u0[i] = std::clamp(result.u0[i], model.inputLower[i],
                                  model.inputUpper[i]);
    }
    result.converged = stats_.converged;
    result.iterations = stats_.iterations;
    result.objective = stats_.objective;
    return result;
}

} // namespace robox::mpc
