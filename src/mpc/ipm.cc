/**
 * @file
 * Implementation of the primal-dual interior-point MPC solver.
 */

#include "mpc/ipm.hh"

#include "mpc/dense_kkt.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "mpc/checkpoint_io.hh"
#include "support/alloc_hook.hh"
#include "support/logging.hh"

namespace robox::mpc
{

namespace
{

/** Barrier curvature lam/s with an overflow guard: rows pinned hard
 *  against their bound can otherwise drive sigma to infinity in
 *  unconverged solves. */
double
cappedSigma(double lam, double s)
{
    return std::min(lam / s, 1e10);
}

/** Dual safeguard applied after each accepted step. */
constexpr double kLambdaCap = 1e10;

/** Position of row id in rows, or -1 when absent. */
int
positionOf(const std::vector<int> &rows, int id)
{
    for (std::size_t j = 0; j < rows.size(); ++j)
        if (rows[j] == id)
            return static_cast<int>(j);
    return -1;
}

/** True when every entry of v is finite. */
bool
allFinite(const Vector &v)
{
    for (std::size_t i = 0; i < v.size(); ++i)
        if (!std::isfinite(v[i]))
            return false;
    return true;
}

} // namespace

IpmSolver::IpmSolver(const dsl::ModelSpec &model, const MpcOptions &options)
    : problem_(model, options)
{
    const std::vector<bool> &uses_state = problem_.runningRowUsesState();
    const std::vector<bool> &uses_input = problem_.runningRowUsesInput();
    for (int i = 0; i < problem_.numRunningIneq(); ++i) {
        full_run_rows_.push_back(i);
        // At stage 0 the state is fixed, so rows that depend only on x
        // are constants there and cannot be enforced. Mixed rows
        // h(x, u) still constrain the stage-0 input through their
        // input Jacobian and must be kept.
        if (!uses_state[i] || uses_input[i])
            stage0_run_rows_.push_back(i);
    }
    for (int i = 0; i < problem_.numTerminalIneq(); ++i)
        term_rows_.push_back(i);

    // Warm-start shift maps: where each block's rows live in the block
    // it inherits slacks from. Built once so initializeSlacks never
    // rescans row sets.
    for (int id : stage0_run_rows_) {
        stage0_in_full_.push_back(positionOf(full_run_rows_, id));
        stage0_in_term_.push_back(positionOf(term_rows_, id));
    }
    for (int id : full_run_rows_)
        full_in_term_.push_back(positionOf(term_rows_, id));

    // Pre-size every solver-owned buffer; after this, a warm solve does
    // not touch the heap.
    const int n_stages = problem_.horizon();
    const std::size_t nx = static_cast<std::size_t>(problem_.nx());
    const std::size_t nu = static_cast<std::size_t>(problem_.nu());

    ineq_.resize(static_cast<std::size_t>(n_stages) + 1);
    ws_.yblk.resize(ineq_.size());
    ws_.trialS.resize(ineq_.size());
    ws_.trialLam.resize(ineq_.size());
    for (int k = 0; k <= n_stages; ++k) {
        IneqBlock &blk = ineq_[k];
        blk.rows = k == n_stages ? term_rows_
                   : k == 0      ? stage0_run_rows_
                                 : full_run_rows_;
        const std::size_t rows = blk.rows.size();
        blk.h.resize(rows);
        blk.hx.resize(rows, nx);
        blk.hu.resize(rows, k == n_stages ? 0 : nu);
        blk.s.resize(rows);
        blk.lam.resize(rows);
        blk.ds.resize(rows);
        blk.dlam.resize(rows);
        ws_.yblk[k].resize(rows);
        ws_.trialS[k].resize(rows);
        ws_.trialLam[k].resize(rows);
    }

    ws_.stages.resize(static_cast<std::size_t>(n_stages));
    for (StageQp &st : ws_.stages) {
        st.a.resize(nx, nx);
        st.b.resize(nx, nu);
        st.c.resize(nx);
        st.q.resize(nx, nx);
        st.r.resize(nu, nu);
        st.s.resize(nu, nx);
        st.qv.resize(nx);
        st.rv.resize(nu);
    }
    ws_.dyn.resize(static_cast<std::size_t>(n_stages));
    ws_.qv0.assign(static_cast<std::size_t>(n_stages), Vector(nx));
    ws_.rv0.assign(static_cast<std::size_t>(n_stages), Vector(nu));
    ws_.qn.resize(nx, nx);
    ws_.qnv0.resize(nx);
    ws_.qnv.resize(nx);
    ws_.dx0.resize(nx);
    ws_.meritDyn.resize(nx);
    ws_.trialXs.assign(static_cast<std::size_t>(n_stages) + 1,
                       Vector(nx));
    ws_.trialUs.assign(static_cast<std::size_t>(n_stages), Vector(nu));
    ws_.riccati.resize(static_cast<std::size_t>(n_stages), nx, nu);
    ws_.sol.dx.assign(static_cast<std::size_t>(n_stages) + 1,
                      Vector(nx));
    ws_.sol.du.assign(static_cast<std::size_t>(n_stages), Vector(nu));
    result_.u0.resize(nu);
    // Pre-size the iteration-trace ring here, once: recording during
    // solve() is then in-place writes only.
    stats_.trace.configure(options.solveTraceCapacity);
}

void
IpmSolver::initializeTrajectory(const Vector &x0,
                                const std::vector<Vector> &refs)
{
    const int n_stages = problem_.horizon();
    const int nx = problem_.nx();
    const int nu = problem_.nu();

    if (warm_ && static_cast<int>(us_.size()) == n_stages) {
        // Shift the previous plan by one step; repeat the last input.
        for (int k = 0; k + 1 < n_stages; ++k)
            us_[k].copyFrom(us_[k + 1]);
        xs_[0].copyFrom(x0);
        for (int k = 0; k < n_stages; ++k)
            problem_.dynamicsValueInto(xs_[k], us_[k], refs[k],
                                       xs_[k + 1]);
        return;
    }

    // Cold start: inputs at the midpoint of their finite bounds (zero
    // when unbounded), states from a rollout.
    const dsl::ModelSpec &model = problem_.model();
    Vector u_init(static_cast<std::size_t>(nu));
    for (int i = 0; i < nu; ++i) {
        double lo = model.inputLower[i];
        double hi = model.inputUpper[i];
        if (lo != -dsl::kUnbounded && hi != dsl::kUnbounded)
            u_init[i] = 0.5 * (lo + hi);
        else if (lo != -dsl::kUnbounded)
            u_init[i] = lo + 0.1;
        else if (hi != dsl::kUnbounded)
            u_init[i] = hi - 0.1;
        else
            u_init[i] = 0.0;
    }
    us_.assign(n_stages, u_init);
    xs_.assign(n_stages + 1, Vector(static_cast<std::size_t>(nx)));
    xs_[0].copyFrom(x0);
    for (int k = 0; k < n_stages; ++k)
        problem_.dynamicsValueInto(xs_[k], us_[k], refs[k], xs_[k + 1]);
}

void
IpmSolver::evaluateIneq(IneqBlock &blk, const StageEval &eval) const
{
    const std::size_t rows = blk.rows.size();
    if (blk.h.size() != rows)
        blk.h.resize(rows);
    if (blk.hx.rows() != rows || blk.hx.cols() != eval.jx.cols())
        blk.hx.resize(rows, eval.jx.cols());
    if (blk.hu.rows() != rows || blk.hu.cols() != eval.ju.cols())
        blk.hu.resize(rows, eval.ju.cols());
    for (std::size_t i = 0; i < rows; ++i) {
        int src = blk.rows[i];
        blk.h[i] = eval.value[src];
        for (std::size_t j = 0; j < eval.jx.cols(); ++j)
            blk.hx(i, j) = eval.jx(src, j);
        for (std::size_t j = 0; j < eval.ju.cols(); ++j)
            blk.hu(i, j) = eval.ju(src, j);
    }
}

double
IpmSolver::initializeSlacks(const std::vector<Vector> &refs,
                            double mu_init)
{
    const int n_stages = problem_.horizon();
    const double floor = problem_.options().slackFloor;
    const bool shift = warm_;

    // The shift runs in place: block k inherits from block k + 1 (the
    // terminal block from itself), and blocks are processed in
    // ascending k, so every source is read before it is overwritten.
    StageEval &eval = ws_.ineqEval;
    for (int k = 0; k <= n_stages; ++k) {
        IneqBlock &blk = ineq_[k];
        if (k == n_stages)
            problem_.evalTerminalIneq(xs_[k], refs[k], eval);
        else
            problem_.evalRunningIneq(xs_[k], us_[k], refs[k], eval);
        evaluateIneq(blk, eval);
        const std::size_t rows = blk.rows.size();

        const IneqBlock *prev = nullptr;
        const std::vector<int> *map = nullptr; // null: same row set.
        if (shift) {
            if (k == n_stages) {
                prev = &blk; // Terminal rows carry over unshifted.
            } else {
                prev = &ineq_[k + 1];
                if (k == 0)
                    map = n_stages == 1 ? &stage0_in_term_
                                        : &stage0_in_full_;
                else if (k == n_stages - 1)
                    map = &full_in_term_;
                // Interior blocks share the full running row set:
                // positions match one-to-one, no lookup needed.
            }
        }
        for (std::size_t i = 0; i < rows; ++i) {
            double s = std::max(floor, -blk.h[i]);
            double lam = mu_init / s;
            if (prev) {
                int j = map ? (*map)[i] : static_cast<int>(i);
                if (j >= 0) {
                    s = std::max(floor * 1e-2, prev->s[j]);
                    lam = std::max(floor * 1e-2, prev->lam[j]);
                }
            }
            blk.s[i] = s;
            blk.lam[i] = lam;
        }
    }

    // Barrier start: for warm starts, resume near the carried-over
    // complementarity instead of re-climbing from muInit.
    double comp_sum = 0.0;
    std::size_t count = 0;
    for (const IneqBlock &blk : ineq_) {
        for (std::size_t i = 0; i < blk.rows.size(); ++i) {
            comp_sum += blk.s[i] * blk.lam[i];
            ++count;
        }
    }
    if (!shift || count == 0)
        return mu_init;
    double comp_avg = comp_sum / count;
    return std::clamp(0.5 * comp_avg, problem_.options().muMin * 10.0,
                      mu_init);
}

double
IpmSolver::meritFunction(const std::vector<Vector> &xs,
                         const std::vector<Vector> &us,
                         const std::vector<Vector> &slacks,
                         const Vector &x0,
                         const std::vector<Vector> &refs, double mu,
                         double rho)
{
    const int n_stages = problem_.horizon();
    double merit = problem_.objective(xs, us, refs);
    ++stats_.lineSearchEvals;

    double infeas = 0.0;
    for (std::size_t i = 0; i < x0.size(); ++i)
        infeas += std::abs(xs[0][i] - x0[i]);
    for (int k = 0; k < n_stages; ++k) {
        problem_.dynamicsValueInto(xs[k], us[k], refs[k], ws_.meritDyn);
        for (std::size_t i = 0; i < ws_.meritDyn.size(); ++i)
            infeas += std::abs(ws_.meritDyn[i] - xs[k + 1][i]);
    }
    for (int k = 0; k <= n_stages; ++k) {
        const IneqBlock &blk = ineq_[k];
        const Vector &s = slacks[k];
        if (k == n_stages)
            problem_.terminalIneqValueInto(xs[k], refs[k], ws_.meritH);
        else
            problem_.runningIneqValueInto(xs[k], us[k], refs[k],
                                          ws_.meritH);
        for (std::size_t i = 0; i < blk.rows.size(); ++i) {
            infeas += std::abs(ws_.meritH[blk.rows[i]] + s[i]);
            if (s[i] <= 0.0)
                return std::numeric_limits<double>::infinity();
            merit -= mu * std::log(s[i]);
        }
    }
    return merit + rho * infeas;
}

const IpmSolver::Result &
IpmSolver::solve(const Vector &x0, const Vector &ref)
{
    const std::size_t count =
        static_cast<std::size_t>(problem_.horizon()) + 1;
    if (ws_.refsScratch.size() != count)
        ws_.refsScratch.assign(count, ref);
    else
        for (Vector &r : ws_.refsScratch)
            r.copyFrom(ref);
    return solve(x0, ws_.refsScratch);
}

const IpmSolver::Result &
IpmSolver::solve(const Vector &x0, const std::vector<Vector> &refs)
{
    const auto t_start = std::chrono::steady_clock::now();
    const std::uint64_t allocs_start = support::allocCount();

    const MpcOptions &opt = problem_.options();
    const int n_stages = opt.horizon;
    const int nx = problem_.nx();
    const int nu = problem_.nu();
    const int np_run = problem_.numRunningResiduals();
    const int np_term = problem_.numTerminalResiduals();
    const dsl::ModelSpec &model = problem_.model();

    stats_.resetForSolve();

    // Numeric-health bookkeeping for the fixed-point path: restart the
    // problem's per-solve report and delta the thread-local Fixed
    // counters across this solve.
    const std::uint64_t sat_start = Fixed::saturationCount();
    const std::uint64_t div_start = Fixed::divByZeroCount();
    problem_.resetNumericHealth();

    // Keep the issued command finite no matter what happened, then
    // project it onto the actuator limits: the interior point method
    // converges to the bounds from the inside but an early stop can
    // leave micro-violations, and failure paths must never leak
    // NaN/Inf to the actuators.
    auto finish = [&](SolveStatus status) -> const Result & {
        if (opt.fixedPointTapes) {
            stats_.numeric = problem_.numericHealth();
            stats_.numeric.saturations =
                Fixed::saturationCount() - sat_start;
            stats_.numeric.divByZeros =
                Fixed::divByZeroCount() - div_start;
        }
        stats_.status = status;
        for (int i = 0; i < nu; ++i) {
            if (!std::isfinite(result_.u0[i]))
                result_.u0[i] = 0.0;
            result_.u0[i] = std::clamp(result_.u0[i],
                                       model.inputLower[i],
                                       model.inputUpper[i]);
        }
        result_.converged = stats_.converged;
        result_.iterations = stats_.iterations;
        result_.objective = stats_.objective;
        result_.status = status;
        result_.degraded = false;
        stats_.solveSeconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  t_start)
                                  .count();
        stats_.heapAllocations = support::allocCount() - allocs_start;
        return result_;
    };

    // Refuse mis-shaped inputs before touching anything: a malformed
    // robot must surface as a structured BadInput on the serving path,
    // never abort the fleet process. The warm start is left untouched
    // so the next well-formed sample resumes normally.
    bool shapes_ok = static_cast<int>(refs.size()) == n_stages + 1 &&
                     static_cast<int>(x0.size()) == nx;
    const auto nref = static_cast<std::size_t>(problem_.nref());
    for (std::size_t r = 0; shapes_ok && r < refs.size(); ++r)
        shapes_ok = refs[r].size() == nref;
    if (!shapes_ok)
        return finish(SolveStatus::BadInput);

    // Refuse NaN/Inf measurements and references outright: the warm
    // start is left untouched so the next valid sample resumes
    // normally, and result_.u0 keeps the last finite command.
    bool inputs_ok = allFinite(x0);
    for (std::size_t r = 0; inputs_ok && r < refs.size(); ++r)
        inputs_ok = allFinite(refs[r]);
    if (!inputs_ok)
        return finish(SolveStatus::BadInput);

    initializeTrajectory(x0, refs);
    double mu = initializeSlacks(refs, opt.muInit);

    // Failsafe ladder state (see ARCHITECTURE.md): escalating
    // regularization bumps, then a step backoff, then a cold restart,
    // then give up with a structured status.
    double kkt_reg = opt.initialRegularization;
    double alpha_cap = 1.0;
    int reg_bumps = 0;
    int backoffs = 0;
    int cold_restarts = 0;
    SolveStatus final_status = SolveStatus::MaxIterations;
    const bool deadline_active = opt.solveDeadlineSeconds >= 0.0;
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t_start)
            .count();
    };

    std::vector<StageQp> &stages = ws_.stages;
    std::vector<StageEval> &dyn = ws_.dyn;
    StageEval &cost_eval = ws_.costEval;
    StageEval &ineq_eval = ws_.ineqEval;
    std::vector<Vector> &qv0 = ws_.qv0;
    std::vector<Vector> &rv0 = ws_.rv0;
    Vector &qnv0 = ws_.qnv0;
    Matrix &qn = ws_.qn;
    Vector &qnv = ws_.qnv;
    std::vector<Vector> &yblk = ws_.yblk;
    RiccatiSolution &sol = ws_.sol;

    // Apply a given set of barrier target vectors y to the gradients.
    auto apply_gradients = [&]() {
        for (int k = 0; k < n_stages; ++k) {
            StageQp &st = stages[k];
            st.qv.copyFrom(qv0[k]);
            st.rv.copyFrom(rv0[k]);
            const IneqBlock &blk = ineq_[k];
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                double y = yblk[k][i];
                for (int a = 0; a < nx; ++a)
                    st.qv[a] += blk.hx(i, a) * y;
                for (int a = 0; a < nu; ++a)
                    st.rv[a] += blk.hu(i, a) * y;
            }
        }
        qnv.copyFrom(qnv0);
        const IneqBlock &term = ineq_[n_stages];
        for (std::size_t i = 0; i < term.rows.size(); ++i) {
            double y = yblk[n_stages][i];
            for (int a = 0; a < nx; ++a)
                qnv[a] += term.hx(i, a) * y;
        }
    };

    // Solve the structured QP with the selected backend into ws_.sol.
    // Reports factorization failures and non-finite steps through the
    // status instead of throwing; the ladder below owns recovery.
    auto solve_kkt = [&]() -> FactorStatus {
        FactorStatus status;
        if (opt.kktSolver == KktSolver::Dense)
            status = solveDenseKkt(stages, qn, qnv, ws_.dx0, ws_.dense,
                                   sol, reg_bumps > 0 ? kkt_reg : 0.0);
        else
            status = solveRiccati(stages, qn, qnv, ws_.dx0, kkt_reg,
                                  ws_.riccati, sol);
        stats_.riccatiFlops += sol.flops;
        if (status != FactorStatus::Ok)
            return status;
        for (int k = 0; k <= n_stages; ++k)
            if (!allFinite(sol.dx[k]))
                return FactorStatus::NonFinite;
        for (int k = 0; k < n_stages; ++k)
            if (!allFinite(sol.du[k]))
                return FactorStatus::NonFinite;
        return FactorStatus::Ok;
    };

    /**
     * One rung of the in-solve recovery ladder. reg_helps marks
     * failures a larger Levenberg shift can cure (indefinite but
     * finite KKT blocks); NaN/Inf data and divergence skip straight to
     * the cold restart. Returns false when the ladder is exhausted, in
     * which case final_status carries the give-up classification.
     */
    RecoveryRung last_rung = RecoveryRung::None;
    auto recover = [&](SolveStatus kind, bool reg_helps) -> bool {
        ++stats_.recoveryAttempts;
        if (reg_helps && reg_bumps < opt.maxRegularizationBumps) {
            kkt_reg = std::max(kkt_reg, 1e-8) *
                      opt.regularizationBumpFactor;
            ++reg_bumps;
            ++stats_.regularizationBumps;
            last_rung = RecoveryRung::RegBump;
            return true;
        }
        if (reg_helps && backoffs < 1) {
            alpha_cap *= 0.1;
            ++backoffs;
            ++stats_.stepBackoffs;
            last_rung = RecoveryRung::StepBackoff;
            return true;
        }
        if (cold_restarts < opt.maxColdRestarts) {
            ++cold_restarts;
            ++stats_.coldRestarts;
            warm_ = false;
            alpha_cap = 1.0;
            initializeTrajectory(x0, refs);
            mu = initializeSlacks(refs, opt.muInit);
            last_rung = RecoveryRung::ColdRestart;
            return true;
        }
        final_status = kind;
        last_rung = RecoveryRung::Exhausted;
        return false;
    };

    // Append one record to the iteration-trace ring (in-place write;
    // see SolveTrace). mu is passed explicitly because a cold restart
    // inside recover() resets the captured variable before the failed
    // iteration is recorded.
    auto record_iter = [&](int iteration, double eq_res, double comp,
                           double mu_at, double alpha, double step_inf,
                           FactorStatus factor, RecoveryRung rung) {
        if (!stats_.trace.enabled())
            return;
        IterationRecord rec;
        rec.iteration = iteration;
        rec.eqResidual = eq_res;
        rec.compAverage = comp;
        rec.mu = mu_at;
        rec.stepAlpha = alpha;
        rec.stepInf = step_inf;
        rec.regularization = kkt_reg;
        rec.factor = factor;
        rec.rung = rung;
        rec.regularizationBumps = stats_.regularizationBumps;
        rec.stepBackoffs = stats_.stepBackoffs;
        rec.coldRestarts = stats_.coldRestarts;
        stats_.trace.push(rec);
    };

    // Slack/dual steps for the primal direction under barrier targets
    // y, plus the fraction-to-boundary step length.
    auto compute_steps = [&]() {
        double alpha = 1.0;
        const double tau = opt.fractionToBoundary;
        for (int k = 0; k <= n_stages; ++k) {
            IneqBlock &blk = ineq_[k];
            std::size_t rows = blk.rows.size();
            if (rows == 0)
                continue;
            Vector &hdz = ws_.hdz;
            multiplyInto(blk.hx, sol.dx[k], hdz);
            if (k < n_stages)
                multiplyAddInto(blk.hu, sol.du[k], hdz);
            for (std::size_t i = 0; i < rows; ++i) {
                double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                blk.ds[i] = -(blk.h[i] + blk.s[i]) - hdz[i];
                blk.dlam[i] =
                    sigma * hdz[i] + (yblk[k][i] - blk.lam[i]);
                if (blk.ds[i] < 0.0)
                    alpha = std::min(alpha, -tau * blk.s[i] / blk.ds[i]);
                if (blk.dlam[i] < 0.0)
                    alpha = std::min(alpha,
                                     -tau * blk.lam[i] / blk.dlam[i]);
            }
        }
        return alpha;
    };

    for (int iter = 0; iter < opt.maxIterations; ++iter) {
        // Anytime MPC: once the wall-clock budget is spent, stop and
        // return the best strictly feasible iterate so far. With a
        // zero budget this fires before the first iteration and the
        // warm-shifted previous plan is returned as-is.
        if (deadline_active && elapsed() >= opt.solveDeadlineSeconds) {
            final_status = SolveStatus::DeadlineMiss;
            break;
        }

        // --------------------------------------------------------
        // Evaluate stage data and build the Newton/LQR subproblem.
        // --------------------------------------------------------
        double eq_residual = 0.0;
        for (int k = 0; k < n_stages; ++k) {
            problem_.evalDynamics(xs_[k], us_[k], refs[k], dyn[k]);
            StageQp &st = stages[k];
            st.a.copyFrom(dyn[k].jx);
            st.b.copyFrom(dyn[k].ju);
            st.c.copyFrom(dyn[k].value);
            st.c -= xs_[k + 1];
            eq_residual = std::max(eq_residual, st.c.normInf());

            st.q.fill(0.0);
            st.r.fill(0.0);
            st.s.fill(0.0);
            qv0[k].fill(0.0);
            rv0[k].fill(0.0);

            if (np_run > 0) {
                problem_.evalRunningCost(xs_[k], us_[k], refs[k],
                                         cost_eval);
                const auto &w = problem_.runningWeights();
                // Gauss-Newton: H += 2 J^T W J, g += 2 J^T W r.
                for (int i = 0; i < np_run; ++i) {
                    double wi = 2.0 * w[i];
                    double ri = cost_eval.value[i];
                    for (int a = 0; a < nx; ++a) {
                        double ja = cost_eval.jx(i, a);
                        if (ja == 0.0 && ri == 0.0)
                            continue;
                        qv0[k][a] += wi * ja * ri;
                        for (int b = 0; b <= a; ++b)
                            st.q(a, b) += wi * ja * cost_eval.jx(i, b);
                    }
                    for (int a = 0; a < nu; ++a) {
                        double ja = cost_eval.ju(i, a);
                        rv0[k][a] += wi * ja * ri;
                        for (int b = 0; b <= a; ++b)
                            st.r(a, b) += wi * ja * cost_eval.ju(i, b);
                        for (int b = 0; b < nx; ++b)
                            st.s(a, b) += wi * ja * cost_eval.jx(i, b);
                    }
                }
            }

            // Barrier Hessian contributions of the stage inequalities.
            IneqBlock &blk = ineq_[k];
            if (!blk.rows.empty()) {
                problem_.evalRunningIneq(xs_[k], us_[k], refs[k],
                                         ineq_eval);
                evaluateIneq(blk, ineq_eval);
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                    for (int a = 0; a < nx; ++a) {
                        double ha = blk.hx(i, a);
                        if (ha != 0.0) {
                            for (int b = 0; b <= a; ++b)
                                st.q(a, b) += sigma * ha * blk.hx(i, b);
                        }
                    }
                    for (int a = 0; a < nu; ++a) {
                        double ha = blk.hu(i, a);
                        if (ha != 0.0) {
                            for (int b = 0; b <= a; ++b)
                                st.r(a, b) += sigma * ha * blk.hu(i, b);
                            for (int b = 0; b < nx; ++b)
                                st.s(a, b) += sigma * ha * blk.hx(i, b);
                        }
                    }
                }
            }

            // Mirror the lower triangles built above.
            for (int a = 0; a < nx; ++a)
                for (int b = a + 1; b < nx; ++b)
                    st.q(a, b) = st.q(b, a);
            for (int a = 0; a < nu; ++a)
                for (int b = a + 1; b < nu; ++b)
                    st.r(a, b) = st.r(b, a);
        }

        // NaN/Inf in the dynamics residual means the trajectory (or
        // the model evaluated on it) has gone non-numeric; no KKT
        // solve can fix that, so escalate straight to a cold restart.
        if (!std::isfinite(eq_residual)) {
            stats_.iterations = iter + 1;
            double mu_at = mu;
            bool again = recover(SolveStatus::NumericFailure, false);
            record_iter(iter + 1, eq_residual, stats_.compAverage,
                        mu_at, 0.0, 0.0, FactorStatus::Ok, last_rung);
            if (again)
                continue;
            break;
        }

        // Terminal stage.
        qn.fill(0.0);
        qnv0.fill(0.0);
        if (np_term > 0) {
            problem_.evalTerminalCost(xs_[n_stages], refs[n_stages],
                                      cost_eval);
            const auto &w = problem_.terminalWeights();
            for (int i = 0; i < np_term; ++i) {
                double wi = 2.0 * w[i];
                double ri = cost_eval.value[i];
                for (int a = 0; a < nx; ++a) {
                    double ja = cost_eval.jx(i, a);
                    if (ja == 0.0 && ri == 0.0)
                        continue;
                    qnv0[a] += wi * ja * ri;
                    for (int b = 0; b <= a; ++b)
                        qn(a, b) += wi * ja * cost_eval.jx(i, b);
                }
            }
        }
        IneqBlock &term = ineq_[n_stages];
        if (!term.rows.empty()) {
            problem_.evalTerminalIneq(xs_[n_stages], refs[n_stages],
                                      ineq_eval);
            evaluateIneq(term, ineq_eval);
            for (std::size_t i = 0; i < term.rows.size(); ++i) {
                double sigma = cappedSigma(term.lam[i], term.s[i]);
                for (int a = 0; a < nx; ++a) {
                    double ha = term.hx(i, a);
                    if (ha != 0.0) {
                        for (int b = 0; b <= a; ++b)
                            qn(a, b) += sigma * ha * term.hx(i, b);
                    }
                }
            }
        }
        for (int a = 0; a < nx; ++a)
            for (int b = a + 1; b < nx; ++b)
                qn(a, b) = qn(b, a);

        // Current average complementarity (for the adaptive centering).
        double comp_now = 0.0;
        std::size_t comp_rows = 0;
        for (const IneqBlock &blk : ineq_) {
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                comp_now += blk.s[i] * blk.lam[i];
                ++comp_rows;
            }
        }
        if (comp_rows)
            comp_now /= comp_rows;

        // --------------------------------------------------------
        // Newton step: plain barrier step, or Mehrotra-style
        // predictor-corrector (affine solve -> adaptive centering ->
        // corrected solve).
        // --------------------------------------------------------
        ws_.dx0.copyFrom(x0);
        ws_.dx0 -= xs_[0];
        auto barrier_targets = [&](double mu_t, bool corrector) {
            for (int k = 0; k <= n_stages; ++k) {
                const IneqBlock &blk = ineq_[k];
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    double sigma = cappedSigma(blk.lam[i], blk.s[i]);
                    double y = blk.lam[i] + sigma * blk.h[i] +
                               mu_t / blk.s[i];
                    if (corrector)
                        y -= blk.ds[i] * blk.dlam[i] / blk.s[i];
                    yblk[k][i] = std::clamp(y, -1e12, 1e12);
                }
            }
        };

        double alpha = 1.0;
        FactorStatus kkt_status = FactorStatus::Ok;
        if (opt.predictorCorrector && comp_rows) {
            // Affine predictor: mu = 0.
            barrier_targets(0.0, false);
            apply_gradients();
            kkt_status = solve_kkt();
            if (kkt_status == FactorStatus::Ok) {
                double alpha_aff = compute_steps();
                // Complementarity after the full affine step.
                double comp_aff = 0.0;
                for (const IneqBlock &blk : ineq_) {
                    for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                        comp_aff +=
                            (blk.s[i] + alpha_aff * blk.ds[i]) *
                            (blk.lam[i] + alpha_aff * blk.dlam[i]);
                    }
                }
                comp_aff /= comp_rows;
                double ratio =
                    comp_now > 0.0 ? comp_aff / comp_now : 0.0;
                double centering = ratio * ratio * ratio;
                mu = std::max(opt.muMin, centering * comp_now);
                // Corrector with second-order term from the affine
                // steps.
                barrier_targets(mu, true);
                apply_gradients();
                kkt_status = solve_kkt();
                if (kkt_status == FactorStatus::Ok)
                    alpha = compute_steps();
            }
        } else {
            barrier_targets(mu, false);
            apply_gradients();
            kkt_status = solve_kkt();
            if (kkt_status == FactorStatus::Ok)
                alpha = compute_steps();
        }
        if (kkt_status != FactorStatus::Ok) {
            // An indefinite-but-finite KKT block responds to a bigger
            // Levenberg shift; NaN/Inf data does not.
            stats_.iterations = iter + 1;
            double mu_at = mu;
            bool again = recover(SolveStatus::NumericFailure,
                                 kkt_status != FactorStatus::NonFinite);
            record_iter(iter + 1, eq_residual, comp_now, mu_at, 0.0,
                        0.0, kkt_status, last_rung);
            if (again)
                continue;
            break;
        }
        alpha = std::min(alpha, alpha_cap);

        double step_inf = 0.0;
        for (int k = 0; k <= n_stages; ++k)
            step_inf = std::max(step_inf, sol.dx[k].normInf());
        for (int k = 0; k < n_stages; ++k)
            step_inf = std::max(step_inf, sol.du[k].normInf());

        // --------------------------------------------------------
        // Backtracking line search on an l1 merit function.
        // --------------------------------------------------------
        double max_lam = 0.0;
        for (const IneqBlock &blk : ineq_)
            max_lam = std::max(max_lam, blk.lam.size() ? blk.lam.normInf()
                                                       : 0.0);
        double rho = 10.0 * (1.0 + max_lam);
        for (int k = 0; k <= n_stages; ++k)
            ws_.trialS[k].copyFrom(ineq_[k].s);
        double merit0 =
            meritFunction(xs_, us_, ws_.trialS, x0, refs, mu, rho);

        double used_alpha = alpha;
        bool accepted = false;
        for (int ls = 0; ls < 8; ++ls) {
            for (int k = 0; k <= n_stages; ++k) {
                addScaledInto(xs_[k], sol.dx[k], used_alpha,
                              ws_.trialXs[k]);
                const IneqBlock &blk = ineq_[k];
                for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                    ws_.trialS[k][i] = blk.s[i] + used_alpha * blk.ds[i];
                    ws_.trialLam[k][i] = std::min(
                        kLambdaCap,
                        blk.lam[i] + used_alpha * blk.dlam[i]);
                }
            }
            for (int k = 0; k < n_stages; ++k)
                addScaledInto(us_[k], sol.du[k], used_alpha,
                              ws_.trialUs[k]);
            double merit = meritFunction(ws_.trialXs, ws_.trialUs,
                                         ws_.trialS, x0, refs, mu, rho);
            if (merit <= merit0 + 1e-9 * std::abs(merit0) + 1e-12) {
                accepted = true;
                break;
            }
            used_alpha *= 0.5;
        }
        // Even if the merit check failed at every trial length, take the
        // smallest step rather than stalling; the barrier keeps iterates
        // strictly feasible.
        std::swap(xs_, ws_.trialXs);
        std::swap(us_, ws_.trialUs);
        for (int k = 0; k <= n_stages; ++k) {
            ineq_[k].s.copyFrom(ws_.trialS[k]);
            ineq_[k].lam.copyFrom(ws_.trialLam[k]);
        }
        (void)accepted;

        // --------------------------------------------------------
        // Divergence detection on the accepted iterate: NaN/Inf
        // anywhere, or magnitudes beyond the divergence threshold,
        // trigger the recovery ladder (cold restart rung).
        // --------------------------------------------------------
        bool finite_iterate = true;
        double iterate_inf = 0.0;
        for (int k = 0; k <= n_stages && finite_iterate; ++k) {
            finite_iterate = allFinite(xs_[k]) &&
                             allFinite(ineq_[k].s) &&
                             allFinite(ineq_[k].lam);
            if (finite_iterate)
                iterate_inf = std::max(iterate_inf, xs_[k].normInf());
        }
        for (int k = 0; k < n_stages && finite_iterate; ++k) {
            finite_iterate = allFinite(us_[k]);
            if (finite_iterate)
                iterate_inf = std::max(iterate_inf, us_[k].normInf());
        }
        if (!finite_iterate || iterate_inf > opt.divergenceThreshold) {
            stats_.iterations = iter + 1;
            double mu_at = mu;
            bool again =
                recover(finite_iterate ? SolveStatus::Diverged
                                       : SolveStatus::NumericFailure,
                        false);
            record_iter(iter + 1, eq_residual, stats_.compAverage,
                        mu_at, used_alpha, step_inf, FactorStatus::Ok,
                        last_rung);
            if (again)
                continue;
            break;
        }

        // --------------------------------------------------------
        // Barrier update and convergence test.
        // --------------------------------------------------------
        double comp_sum = 0.0;
        std::size_t comp_count = 0;
        for (const IneqBlock &blk : ineq_) {
            for (std::size_t i = 0; i < blk.rows.size(); ++i) {
                comp_sum += blk.s[i] * blk.lam[i];
                ++comp_count;
            }
        }
        double comp_avg = comp_count ? comp_sum / comp_count : 0.0;
        if (!opt.predictorCorrector) {
            mu = std::max(opt.muMin,
                          std::min(mu, opt.muShrink * comp_avg));
        }

        stats_.iterations = iter + 1;
        stats_.eqResidual = eq_residual;
        stats_.compAverage = comp_avg;
        record_iter(iter + 1, eq_residual, comp_avg, mu, used_alpha,
                    step_inf, FactorStatus::Ok, RecoveryRung::None);

        if (step_inf * used_alpha < opt.tolerance &&
            eq_residual < 10.0 * opt.tolerance &&
            (comp_count == 0 || comp_avg < 1e-6)) {
            stats_.converged = true;
            final_status = SolveStatus::Converged;
            break;
        }
    }

    stats_.objective = problem_.objective(xs_, us_, refs);

    // Self-check verdict: the accelerator recovery ladder fell through
    // to the CPU fallback at least once, so the iterate mixes pre- and
    // post-detection arithmetic. This outranks the cross-check verdict
    // below because it names the cause (a detected hardware fault),
    // not just the symptom.
    if (opt.fixedPointTapes && statusUsable(final_status) &&
        problem_.accelFaultDetected()) {
        final_status = SolveStatus::AccelFault;
    }

    // Golden cross-check verdict: an iterate computed through a
    // fixed-point path that diverged from the double-precision model
    // beyond the fail band must not reach the actuators (or seed the
    // next warm start), however healthy the solver loop looked.
    if (opt.fixedPointTapes && statusUsable(final_status) &&
        problem_.numericHealth().degraded()) {
        final_status = SolveStatus::NumericDegraded;
    }

    // Usable statuses (converged, iteration-capped, deadline-capped)
    // carry a valid interior iterate that seeds the next warm start;
    // failure statuses drop it so the next call cold-starts instead of
    // iterating from a poisoned trajectory.
    const bool usable = statusUsable(final_status);
    warm_ = usable;
    if (usable || allFinite(us_[0]))
        result_.u0.copyFrom(us_[0]);
    return finish(final_status);
}

namespace
{

/** readVector with a layout check: the destination keeps its
 *  construction-time size, so a mismatched payload fails instead of
 *  silently resizing solver storage. */
bool
readVectorExact(support::CheckpointReader &r, Vector &v)
{
    std::uint64_t n = 0;
    if (!r.u64(&n) || n != v.size())
        return false;
    return r.f64Array(v.data(), v.size());
}


} // namespace

void
IpmSolver::checkpoint(support::CheckpointWriter &w) const
{
    w.boolean(warm_);
    writeVectorList(w, xs_);
    writeVectorList(w, us_);
    w.u64(ineq_.size());
    for (const IneqBlock &blk : ineq_) {
        writeVector(w, blk.s);
        writeVector(w, blk.lam);
    }
    writeVector(w, result_.u0);
    w.boolean(result_.converged);
    w.i32(result_.iterations);
    w.f64(result_.objective);
    w.u32(static_cast<std::uint32_t>(result_.status));
    w.boolean(result_.degraded);
}

bool
IpmSolver::restore(support::CheckpointReader &r)
{
    std::uint64_t blocks = 0;
    std::uint32_t status = 0;
    // xs_/us_ stay empty until the first solve(), so the payload may
    // carry either nothing or a full trajectory; size the in-memory
    // storage from the problem dimensions, never from the payload.
    const auto stages = static_cast<std::uint64_t>(problem_.horizon());
    const auto nx = static_cast<std::uint64_t>(problem_.nx());
    const auto nu = static_cast<std::uint64_t>(problem_.nu());
    auto read_traj = [&](std::vector<Vector> &vs, std::uint64_t count,
                         std::uint64_t dim) {
        std::uint64_t n = 0;
        if (!r.u64(&n) || (n != 0 && n != count))
            return false;
        vs.assign(static_cast<std::size_t>(n),
                  Vector(static_cast<std::size_t>(dim)));
        for (Vector &v : vs)
            if (!readVectorExact(r, v))
                return false;
        return true;
    };
    bool ok = r.boolean(&warm_) && read_traj(xs_, stages + 1, nx) &&
              read_traj(us_, stages, nu) && r.u64(&blocks) &&
              blocks == ineq_.size();
    for (std::size_t k = 0; ok && k < ineq_.size(); ++k)
        ok = readVectorExact(r, ineq_[k].s) &&
             readVectorExact(r, ineq_[k].lam);
    // result_.u0 is empty until the first solve, so the restored size
    // may legitimately differ from the in-memory one — but only ever
    // 0 (never solved) or the input dimension.
    auto read_u0 = [&] {
        std::uint64_t n = 0;
        if (!r.u64(&n) ||
            (n != 0 && n != static_cast<std::uint64_t>(problem_.nu())))
            return false;
        if (result_.u0.size() != n)
            result_.u0.resize(static_cast<std::size_t>(n));
        return r.f64Array(result_.u0.data(), result_.u0.size());
    };
    ok = ok && read_u0() &&
         r.boolean(&result_.converged) && r.i32(&result_.iterations) &&
         r.f64(&result_.objective) && r.u32(&status) &&
         status <= static_cast<std::uint32_t>(SolveStatus::Shed) &&
         r.boolean(&result_.degraded);
    if (!ok) {
        warm_ = false;
        return false;
    }
    result_.status = static_cast<SolveStatus>(status);
    return true;
}

} // namespace robox::mpc
