/**
 * @file
 * Black-box flight recorder for the serving layer.
 *
 * A fixed-capacity in-place ring of the most recent per-period
 * records — measured state, issued command, SolveStatus, admission
 * rung, sensor/link verdicts — in the same ring discipline as the
 * per-solve iteration trace (mpc/solve_trace.hh): pre-sized once by
 * configure(), written in place, never allocating on the hot path.
 *
 * The recorder is the "black box" of the crash-safe serving story
 * (support/checkpoint.hh): it is embedded in every checkpoint, so the
 * moments leading up to a crash survive the crash, and it is dumped as
 * a deterministic JSON postmortem whenever the failsafe ladder
 * exhausts or a restore rejects a torn/corrupt checkpoint. toJson() is
 * byte-deterministic (formatDouble/jsonNumber rendering), so postmortem
 * dumps can be diffed and golden-tested like every other artifact.
 */

#ifndef ROBOX_MPC_FLIGHT_RECORDER_HH
#define ROBOX_MPC_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hh"
#include "mpc/status.hh"
#include "support/checkpoint.hh"

namespace robox::mpc
{

/** One control period of one robot, as the recorder saw it. */
struct FlightRecord
{
    std::uint64_t period = 0; //!< Virtual period (batch) index.
    std::int32_t robot = -1;  //!< Robot index; -1 for a single robot.
    SolveStatus status = SolveStatus::Unsolved;
    /** Admission-ladder decision (mpc/batch.hh Admit), -1 = n/a. */
    std::int32_t rung = -1;
    /** SensorGate verdict (mpc/sensor_gate.hh), -1 = unchecked. */
    std::int32_t sensorVerdict = -1;
    /** Link service verdict (mpc/link.hh), -1 = direct I/O. */
    std::int32_t linkService = -1;
    bool degraded = false; //!< Served by the failsafe/backup path.
    Vector state;          //!< Measured state fed to the period.
    Vector command;        //!< Command issued to the actuators.
};

/** Fixed-capacity ring of FlightRecords; see the file comment. */
class FlightRecorder
{
  public:
    /** Size (or resize) the ring; capacity 0 disables recording. */
    void configure(int capacity);

    /** Forget all records but keep the storage. */
    void clear();

    /** Append a record, overwriting the oldest when full. */
    void push(const FlightRecord &rec);

    bool enabled() const { return !ring_.empty(); }
    int capacity() const { return static_cast<int>(ring_.size()); }
    int size() const { return static_cast<int>(count_); }
    bool empty() const { return count_ == 0; }
    /** Records pushed since the last clear (>= size when wrapped). */
    std::uint64_t totalRecorded() const { return total_; }
    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const { return total_ - count_; }

    /** i-th retained record, oldest first (i in [0, size())). */
    const FlightRecord &record(int i) const;

    /**
     * Deterministic JSON postmortem: capacity/recorded/dropped plus
     * every retained record, oldest first. Equal recorder states
     * render byte-identical documents.
     */
    std::string toJson() const;

    /** Serialize the ring (bitwise doubles) into a checkpoint. */
    void checkpoint(support::CheckpointWriter &w) const;

    /** Restore state written by checkpoint(). The recorder must be
     *  configure()d with the same capacity; false (recorder cleared)
     *  on a mismatch or short payload. */
    bool restore(support::CheckpointReader &r);

  private:
    std::vector<FlightRecord> ring_;
    std::size_t head_ = 0;  //!< Next write slot.
    std::size_t count_ = 0; //!< Retained records.
    std::uint64_t total_ = 0;
};

} // namespace robox::mpc

#endif // ROBOX_MPC_FLIGHT_RECORDER_HH
