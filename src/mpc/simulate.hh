/**
 * @file
 * Closed-loop simulation of a RoboX controller on the true continuous
 * dynamics.
 *
 * The MPC controller plans against its own discretization; this helper
 * plays the role of the physical robot: it integrates the ModelSpec's
 * continuous dynamics with finely-substepped RK4, applies the first
 * control of each plan (Sec. II-B), and records the realized
 * trajectory. Used by examples and by the convergence tests that check
 * each benchmark robot actually accomplishes its task.
 */

#ifndef ROBOX_MPC_SIMULATE_HH
#define ROBOX_MPC_SIMULATE_HH

#include <functional>
#include <vector>

#include "mpc/failsafe.hh"
#include "mpc/ipm.hh"
#include "mpc/status.hh"

namespace robox::mpc
{

/** Realized closed-loop trajectory. */
struct SimulationResult
{
    std::vector<Vector> states;  //!< x at each control period (steps+1).
    std::vector<Vector> inputs;  //!< Applied u at each period (steps).
    std::vector<double> times;   //!< Time stamps (steps+1).
    bool allConverged = true;    //!< Every solve converged.
    int totalIterations = 0;     //!< Summed IPM iterations.
    /** Per-step solver status (size steps). */
    std::vector<SolveStatus> statuses;
    /** Steps whose command came from the backup plan (the
     *  time-shifted tail of the last accepted plan; failsafe.hh). */
    int degradedSteps = 0;
    /** Longest run of consecutive degraded steps. */
    int maxConsecutiveDegraded = 0;
};

/** The plant: integrates the continuous dynamics. */
class Plant
{
  public:
    /** Build an integrator for the model's continuous dynamics. */
    explicit Plant(const dsl::ModelSpec &model);

    /**
     * Integrate one control period of length dt with RK4 substeps.
     *
     * @param x Current state.
     * @param u Held control input.
     * @param ref Reference values (may enter dynamics).
     * @param dt Control period.
     * @param substeps RK4 substeps within the period.
     */
    Vector step(const Vector &x, const Vector &u, const Vector &ref,
                double dt, int substeps = 8) const;

  private:
    void derivativeInto(const Vector &x, const Vector &u,
                        const Vector &ref, Vector &dx) const;

    int nx_;
    int nu_;
    int nref_;
    sym::Tape tape_;
    // Evaluation scratch reused across substeps, so long rollouts do
    // not churn the heap. A Plant instance is therefore not safe to
    // share across threads; give each worker its own.
    mutable std::vector<double> env_;
    mutable std::vector<double> work_;
    mutable std::vector<double> out_;
    mutable Vector k1_, k2_, k3_, k4_, xmid_;
};

/**
 * Run closed-loop MPC for a number of control periods with a possibly
 * time-varying reference.
 */
SimulationResult simulateClosedLoop(
    IpmSolver &solver, const Vector &x0,
    const std::function<Vector(int step)> &ref_at, int steps,
    int substeps = 8);

/** Convenience overload for a constant reference. */
SimulationResult simulateClosedLoop(IpmSolver &solver, const Vector &x0,
                                    const Vector &ref, int steps,
                                    int substeps = 8);

} // namespace robox::mpc

#endif // ROBOX_MPC_SIMULATE_HH
