/**
 * @file
 * Per-solve iteration trace for the interior-point solver.
 *
 * A fixed-capacity ring of per-iteration records kept by IpmSolver and
 * surfaced through SolveStats::trace. When a solve converges in a few
 * iterations the ring holds the whole story; when a solve misbehaves
 * (regularization bumps, step backoffs, cold restarts, divergence) the
 * ring holds the last solveTraceCapacity iterations leading up to the
 * outcome — exactly the window a postmortem needs. The ring is
 * pre-sized once at solver construction and written in place, so
 * recording never allocates and the zero-allocation warm-solve
 * contract (tests/batch_test.cc) is preserved.
 *
 * formatSolveTrace renders the ring as an aligned text table in the
 * same spirit as accel::formatNumericHealth, for log files and test
 * failure messages.
 */

#ifndef ROBOX_MPC_SOLVE_TRACE_HH
#define ROBOX_MPC_SOLVE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/cholesky.hh"

namespace robox::mpc
{

/** Which recovery-ladder rung (if any) fired on an iteration. */
enum class RecoveryRung
{
    None = 0,       //!< Normal iteration, no recovery.
    RegBump,        //!< KKT regularization bump.
    StepBackoff,    //!< Step-length cap backoff.
    ColdRestart,    //!< Warm-start reset + reinitialization.
    Exhausted,      //!< Ladder exhausted; solve gave up after this.
};

const char *toString(RecoveryRung rung);

/** One interior-point iteration of one solve() call. */
struct IterationRecord
{
    int iteration = 0;          //!< 1-based iteration number.
    double eqResidual = 0.0;    //!< Inf-norm of the dynamics residual.
    double compAverage = 0.0;   //!< Average complementarity s'lam/m.
    double mu = 0.0;            //!< Barrier parameter in effect.
    double stepAlpha = 0.0;     //!< Accepted step length (after search).
    double stepInf = 0.0;       //!< Inf-norm of the Newton step.
    double regularization = 0.0; //!< KKT Levenberg shift in effect.
    FactorStatus factor = FactorStatus::Ok;
    RecoveryRung rung = RecoveryRung::None;
    // Cumulative ladder counters as of this iteration's end.
    int regularizationBumps = 0;
    int stepBackoffs = 0;
    int coldRestarts = 0;
};

/**
 * Fixed-capacity ring of IterationRecords. configure() allocates the
 * storage once; clear() and push() never touch the heap.
 */
class SolveTrace
{
  public:
    /** Size (or resize) the ring; called at solver construction.
     *  Capacity 0 disables recording (push becomes a no-op). */
    void configure(int capacity)
    {
        ring_.assign(capacity > 0 ? static_cast<std::size_t>(capacity)
                                  : 0,
                     IterationRecord());
        clear();
    }

    /** Forget all records but keep the storage. */
    void clear()
    {
        head_ = 0;
        count_ = 0;
        total_ = 0;
    }

    /** Append a record, overwriting the oldest when full. */
    void push(const IterationRecord &rec)
    {
        ++total_;
        if (ring_.empty())
            return;
        ring_[head_] = rec;
        head_ = (head_ + 1) % ring_.size();
        if (count_ < ring_.size())
            ++count_;
    }

    bool enabled() const { return !ring_.empty(); }
    int capacity() const { return static_cast<int>(ring_.size()); }
    /** Records currently retained (<= capacity). */
    int size() const { return static_cast<int>(count_); }
    bool empty() const { return count_ == 0; }
    /** Records pushed since the last clear (>= size when wrapped). */
    std::uint64_t totalRecorded() const { return total_; }
    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const { return total_ - count_; }

    /** i-th retained record, oldest first (i in [0, size())). */
    const IterationRecord &record(int i) const
    {
        std::size_t idx =
            (head_ + ring_.size() - count_ + static_cast<std::size_t>(i)) %
            ring_.size();
        return ring_[idx];
    }

  private:
    std::vector<IterationRecord> ring_;
    std::size_t head_ = 0;  //!< Next write slot.
    std::size_t count_ = 0; //!< Retained records.
    std::uint64_t total_ = 0;
};

/**
 * Render the trace as an aligned text table (one row per retained
 * iteration), bracketed by Begin/End banners. Notes how many older
 * records were dropped to ring wrap-around, so a truncated view is
 * never mistaken for the whole solve.
 */
std::string formatSolveTrace(const std::string &name,
                             const SolveTrace &trace);

} // namespace robox::mpc

#endif // ROBOX_MPC_SOLVE_TRACE_HH
