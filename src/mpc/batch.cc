/**
 * @file
 * Implementation of the batched multi-robot MPC controller and its
 * overload-management (admission / degrade / backup / shed) layer.
 */

#include "mpc/batch.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "support/logging.hh"

namespace robox::mpc
{

BatchController::BatchController(const dsl::ModelSpec &model,
                                 const MpcOptions &options,
                                 std::size_t num_robots,
                                 std::size_t num_threads)
    : options_(options)
{
    robox_assert(num_robots > 0);
    solvers_.reserve(num_robots);
    backups_.reserve(num_robots);
    gates_.reserve(num_robots);
    for (std::size_t i = 0; i < num_robots; ++i) {
        solvers_.push_back(std::make_unique<IpmSolver>(model, options));
        // Bind the per-robot helpers to the solver's own model copy,
        // not the caller's reference, so their lifetime is tied to
        // this controller.
        const dsl::ModelSpec &owned = solvers_.back()->problem().model();
        backups_.emplace_back(owned);
        gates_.emplace_back(owned, options);
    }
    results_.resize(num_robots);
    report_.statuses.assign(num_robots, SolveStatus::Unsolved);
    priority_.assign(num_robots, 0.0);
    ewma_.assign(num_robots, 0.0);
    decisions_.assign(num_robots, Admit::Full);
    scale_.assign(num_robots, 1.0);
    order_.reserve(num_robots);
    prev_decisions_.assign(num_robots, Admit::Full);
    poisoned_.assign(num_robots, 0);
    batch_cost_.assign(num_robots, 0.0);

    gate_active_ = options.sensorRangeMargin >= 0.0 ||
                   options.sensorJumpThreshold > 0.0 ||
                   options.sensorFrozenPeriods > 0;

    if (options.linkEnabled)
        link_ = std::make_unique<FleetLink>(
            solvers_.front()->problem().model(), options, num_robots);

    if (options.flightRecorderCapacity > 0)
        recorder_.configure(options.flightRecorderCapacity);

    report_.overload.budgetSeconds = options.batchDeadlineSeconds;
    const double latency_hi = options.batchDeadlineSeconds > 0.0
                                  ? 4.0 * options.batchDeadlineSeconds
                                  : 0.25;
    report_.overload.batchLatency = stats::Histogram(
        "batch_seconds", "Batch wall time", 0.0, latency_hi, 64);

    std::size_t pool = std::min(num_threads, num_robots);
    if (pool > 1) {
        workers_.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }
    report_.robots = num_robots;
    report_.threads = workers_.size();
}

BatchController::~BatchController()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
BatchController::setPriority(std::size_t i, double priority)
{
    robox_assert(i < priority_.size());
    priority_[i] = priority;
}

void
BatchController::validateInputs()
{
    const MpcProblem &problem = solvers_[0]->problem();
    const auto nx = static_cast<std::size_t>(problem.nx());
    const auto nref = static_cast<std::size_t>(problem.nref());
    report_.overload.lastBatchPoisoned = 0;
    std::fill(poisoned_.begin(), poisoned_.end(), 0);

    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        // Robots the link layer already demoted (stale measurement,
        // link down) keep their decision; validation only concerns
        // robots that would otherwise be solved.
        if (decisions_[i] != Admit::Full)
            continue;
        if (i >= states_->size() || i >= refs_->size() ||
            (*states_)[i].size() != nx || (*refs_)[i].size() != nref) {
            decisions_[i] = Admit::BadInput;
            continue;
        }
        // The sensor gate demotes a poisoned robot to its backup plan
        // *before* the solve, instead of letting the solver spend its
        // budget diverging on an implausible measurement. In link mode
        // only genuinely fresh measurements are gated: an extrapolated
        // state is the controller's own rollout, plausible by
        // construction, and feeding it to the stateful gate would
        // corrupt the jump/frozen baselines.
        const bool gateable =
            !link_ || link_->service(i) == FleetLink::Service::Fresh;
        if (gate_active_ && gateable &&
            gates_[i].check((*states_)[i]) != SensorVerdict::Ok) {
            decisions_[i] = Admit::Backup;
            poisoned_[i] = 1;
            ++report_.overload.lastBatchPoisoned;
        }
    }
}

void
BatchController::runAdmission()
{
    OverloadReport &ov = report_.overload;
    ov.projectedSeconds = 0.0;
    ov.admittedSeconds = 0.0;
    const double budget = options_.batchDeadlineSeconds;
    if (budget < 0.0)
        return;

    const double par =
        options_.overloadParallelism > 0
            ? static_cast<double>(options_.overloadParallelism)
            : static_cast<double>(
                  std::max<std::size_t>(std::size_t{1}, workers_.size()));

    // Candidates: robots still admitted whose cost model has at least
    // one measurement. Unmeasured robots are always admitted — the
    // model has no basis to degrade them, and their first measured
    // solve is what seeds it.
    order_.clear();
    double total = 0.0;
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        if (decisions_[i] == Admit::Full && ewma_[i] > 0.0) {
            order_.push_back(i);
            total += ewma_[i];
        }
    }
    ov.projectedSeconds = total / par;
    ov.admittedSeconds = ov.projectedSeconds;
    const double compute_budget = budget * par;
    if (total <= compute_budget)
        return;
    ++ov.overloadedBatches;

    // Service order: priority descending, lower index kept on ties —
    // degradation, backup demotion, and shedding all start from the
    // tail of this order.
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                  if (priority_[a] != priority_[b])
                      return priority_[a] > priority_[b];
                  return a < b;
              });

    const double floor_scale =
        std::clamp(options_.overloadDegradeFloor, 0.01, 1.0);

    // Rung 1 — degrade: protect the largest full-budget prefix that
    // still leaves every remaining robot at least the floor scale,
    // then degrade the rest with one common scale. By construction
    // the common scale lands in [floor_scale, 1).
    double spent = 0.0;
    double rest = total;
    std::size_t k = 0;
    for (; k < order_.size(); ++k) {
        const double c = ewma_[order_[k]];
        if (spent + c + floor_scale * (rest - c) > compute_budget)
            break;
        spent += c;
        rest -= c;
    }
    if (rest <= 0.0) {
        ov.admittedSeconds = spent / par;
        return;
    }
    double scale = std::min(1.0, (compute_budget - spent) / rest);
    if (scale >= floor_scale) {
        for (std::size_t j = k; j < order_.size(); ++j) {
            decisions_[order_[j]] = Admit::Degraded;
            scale_[order_[j]] = scale;
        }
        ov.admittedSeconds = (spent + scale * rest) / par;
        return;
    }

    // Rung 2 — backup: everyone left runs at the floor; demote robots
    // from the tail (lowest priority) to their backup-plan tail until
    // the batch fits. Backup service is cheap but not free; it is
    // charged at overloadBackupCostSeconds per robot.
    for (std::size_t j = k; j < order_.size(); ++j) {
        decisions_[order_[j]] = Admit::Degraded;
        scale_[order_[j]] = floor_scale;
    }
    const double backup_cost =
        std::max(0.0, options_.overloadBackupCostSeconds);
    double deg_cost = floor_scale * rest;
    std::size_t n_backup = 0;
    std::size_t tail = order_.size();
    while (tail > k &&
           spent + deg_cost + static_cast<double>(n_backup) * backup_cost >
               compute_budget) {
        --tail;
        decisions_[order_[tail]] = Admit::Backup;
        deg_cost -= floor_scale * ewma_[order_[tail]];
        ++n_backup;
    }

    // Rung 3 — shed: when even backup service overflows the budget,
    // shed outright, again from the lowest priority.
    std::size_t s = order_.size();
    while (s > tail &&
           spent + deg_cost + static_cast<double>(n_backup) * backup_cost >
               compute_budget) {
        --s;
        decisions_[order_[s]] = Admit::Shed;
        --n_backup;
    }
    ov.admittedSeconds =
        (spent + deg_cost + static_cast<double>(n_backup) * backup_cost) /
        par;
}

void
BatchController::applyBudgets()
{
    if (options_.batchDeadlineSeconds < 0.0)
        return;
    const int min_iters = std::max(1, options_.overloadMinIterations);
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        // Budgets target whichever version serves the robot, scaled
        // from that version's own base options.
        const bool cand = upgrade_ && upgrade_->servesCandidate(i);
        const MpcOptions &base =
            cand ? upgrade_->candidateOptions() : options_;
        IpmSolver &solver = servingSolver(i);
        if (decisions_[i] == Admit::Degraded) {
            const int cap = std::min(
                base.maxIterations,
                std::max(min_iters,
                         static_cast<int>(base.maxIterations *
                                          scale_[i])));
            solver.setMaxIterations(cap);
            // With an injected cost model (virtual time) the wall
            // clock is not the campaign's time base: degrade purely
            // via the deterministic iteration cap so runs replay
            // bitwise. Without one, also bound the real wall cost to
            // this robot's share of the batch budget.
            solver.setSolveDeadline(cost_hook_
                                        ? base.solveDeadlineSeconds
                                        : scale_[i] * ewma_[i]);
        } else {
            // Restore base budgets: robots admitted at full budget
            // must be bitwise identical to an unloaded serial solve.
            solver.setMaxIterations(base.maxIterations);
            solver.setSolveDeadline(base.solveDeadlineSeconds);
        }
        if (upgrade_ && upgrade_->doubleSolve()) {
            // The shadowing version always validates at its own base
            // budget — its compute rides outside the admission budget
            // (validation is the price of the rollout), and a robot
            // that switched versions must not inherit the other
            // side's tightened caps.
            IpmSolver &shadow = cand
                                    ? *solvers_[i]
                                    : upgrade_->candidateSolver(i);
            const MpcOptions &sbase =
                cand ? options_ : upgrade_->candidateOptions();
            shadow.setMaxIterations(sbase.maxIterations);
            shadow.setSolveDeadline(sbase.solveDeadlineSeconds);
        }
    }
}

void
BatchController::serveLocal(std::size_t i)
{
    IpmSolver::Result &r = results_[i];
    const dsl::ModelSpec &model = solvers_[i]->problem().model();
    const auto nu = static_cast<std::size_t>(model.nu());
    if (r.u0.size() != nu)
        r.u0.resize(nu);
    r.converged = false;
    r.iterations = 0;
    r.objective = 0.0;
    r.degraded = true;
    switch (decisions_[i]) {
      case Admit::Backup:
        r.status = SolveStatus::ServedFromBackup;
        r.u0.copyFrom(backups_[i].command());
        break;
      case Admit::BadInput:
        r.status = SolveStatus::BadInput;
        r.u0.copyFrom(backups_[i].command());
        break;
      case Admit::Shed:
      default:
        // Shed: no service at all — the backup tail is not advanced
        // and u0 is only the box-projected zero placeholder; callers
        // should hold the previous actuation.
        r.status = SolveStatus::Shed;
        for (std::size_t j = 0; j < nu; ++j)
            r.u0[j] = std::clamp(0.0, model.inputLower[j],
                                 model.inputUpper[j]);
        break;
    }
}

void
BatchController::solveOne(std::size_t i)
{
    if (stall_hook_)
        stall_hook_(i);
    IpmSolver &serving = servingSolver(i);
    results_[i] = serving.solve((*states_)[i], (*refs_)[i]);
    if (upgrade_ && upgrade_->doubleSolve()) {
        // Shadow solve: the non-serving version solves a copy of the
        // same inputs so divergence can be scored and both versions
        // stay warm. Its own try/catch keeps a buggy candidate from
        // ever quarantining the serving result.
        IpmSolver &shadow = upgrade_->servesCandidate(i)
                                ? *solvers_[i]
                                : upgrade_->candidateSolver(i);
        const IpmSolver::Result *shadow_result = nullptr;
        try {
            shadow_result = &shadow.solve((*states_)[i], (*refs_)[i]);
        } catch (...) {
        }
        upgrade_->recordPair(i, results_[i],
                             serving.lastStats().solveSeconds,
                             shadow_result,
                             shadow.lastStats().solveSeconds);
    }
    if (statusUsable(results_[i].status)) {
        backups_[i].accept(serving.inputTrajectory());
        if (decisions_[i] == Admit::Degraded)
            results_[i].status = SolveStatus::DegradedBudget;
    } else {
        // Per-robot failsafe, mirroring core::Controller::step: a
        // failed solve is served from the backup-plan tail.
        const Vector &u = backups_[i].command();
        if (results_[i].u0.size() != u.size())
            results_[i].u0.resize(u.size());
        results_[i].u0.copyFrom(u);
        results_[i].degraded = true;
    }
}

void
BatchController::drainQueue()
{
    const std::size_t count = solvers_.size();
    for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        try {
            if (decisions_[i] == Admit::Full ||
                decisions_[i] == Admit::Degraded)
                solveOne(i);
            else
                serveLocal(i);
        } catch (...) {
            // solve() handles numeric failures via SolveStatus, so
            // anything arriving here is unexpected. Quarantine it to
            // this robot: stamp the failure, serve its backup command,
            // and keep draining so the rest of the fleet still gets
            // its commands. Nothing is rethrown — the incident lands
            // in report().lastBatchExceptions for postmortems.
            results_[i].status = SolveStatus::NumericFailure;
            results_[i].converged = false;
            results_[i].degraded = true;
            const Vector &u = backups_[i].command();
            if (results_[i].u0.size() != u.size())
                results_[i].u0.resize(u.size());
            results_[i].u0.copyFrom(u);
            std::lock_guard<std::mutex> lock(mutex_);
            ++thrown_;
            // Deterministic postmortem policy: whatever the thread
            // schedule, the recorded fault is the lowest robot index
            // that threw.
            if (!error_ || i < error_robot_) {
                error_ = std::current_exception();
                error_robot_ = i;
            }
        }
    }
}

void
BatchController::finishDrain()
{
    // Saturation/div-by-zero events were counted in this thread's
    // thread-local Fixed statistics, invisible to the coordinator.
    // Fold them into the process-wide aggregates now, once per batch,
    // so Fixed::globalSaturationCount() is complete after solveAll().
    Fixed::flushCounts();
}

void
BatchController::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_work_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        drainQueue();
        finishDrain();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
BatchController::finishLinkPeriod()
{
    // Downlink half of the period, on the coordinator in robot-index
    // order (the determinism contract): every usable fresh solve
    // becomes a sequence-numbered plan downlink, then the link runs
    // retransmits, drains deliveries into the robot-side buffers, and
    // decides what each robot actually executed.
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        const bool solved = decisions_[i] == Admit::Full ||
                            decisions_[i] == Admit::Degraded;
        if (solved && statusUsable(results_[i].status))
            link_->sendPlan(i, servingSolver(i).inputTrajectory());
    }
    link_->finishPeriod();

    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        if (link_->executedFreshPlan(i))
            continue;
        // The robot-side buffer is authoritative: whatever the
        // controller computed, what reached the actuators this period
        // is the buffered open-loop tail.
        IpmSolver::Result &r = results_[i];
        const Vector &u = link_->executedCommand(i);
        if (r.u0.size() != u.size())
            r.u0.resize(u.size());
        r.u0.copyFrom(u);
        if (statusUsable(r.status)) {
            // Solved fine, but the plan missed its delivery deadline —
            // the fleet-visible outcome is backup service.
            r.status = SolveStatus::ServedFromBackup;
            r.degraded = true;
        }
    }
}

void
BatchController::updateCostModel()
{
    const double alpha =
        std::clamp(options_.overloadEwmaAlpha, 0.0, 1.0);
    const double recovery =
        std::clamp(options_.overloadRecoveryFactor, 0.0, 1.0);
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        batch_cost_[i] = 0.0;
        switch (decisions_[i]) {
          case Admit::Full:
          case Admit::Degraded: {
            const double measured =
                servingSolver(i).lastStats().solveSeconds;
            // Under a virtual-time hook a canary/committed robot's
            // modeled cost carries the candidate's modeledCostScale,
            // so the admission ladder (and the latency guard) see the
            // candidate's cost profile deterministically. Measured
            // wall time already is the candidate's cost.
            const double cost =
                cost_hook_ ? cost_hook_(i, measured) *
                                 (upgrade_ ? upgrade_->costScale(i)
                                           : 1.0)
                           : measured;
            if (!(cost >= 0.0) || !std::isfinite(cost))
                break; // Refuse NaN/negative costs from a buggy hook.
            batch_cost_[i] = cost;
            ewma_[i] = ewma_[i] <= 0.0
                           ? cost
                           : (1.0 - alpha) * ewma_[i] + alpha * cost;
            break;
          }
          case Admit::Backup:
          case Admit::Shed:
            // No fresh measurement. Decay the estimate so a demoted
            // robot is eventually re-admitted, remeasured, and — if
            // still expensive — re-demoted.
            ewma_[i] *= recovery;
            batch_cost_[i] =
                decisions_[i] == Admit::Backup
                    ? std::max(0.0, options_.overloadBackupCostSeconds)
                    : 0.0;
            break;
          case Admit::BadInput:
            break; // Not solved, but its compute cost did not change.
        }
    }
}

void
BatchController::recordTimeline()
{
    // Admit -> public rung mapping (recorded even while disabled so a
    // late enableTimeline still sees correct rung-change baselines).
    auto to_rung = [](Admit d) {
        switch (d) {
          case Admit::Full: return ServiceRung::Full;
          case Admit::Degraded: return ServiceRung::Degraded;
          case Admit::Backup: return ServiceRung::Backup;
          case Admit::Shed: return ServiceRung::Shed;
          case Admit::BadInput: return ServiceRung::BadInput;
        }
        return ServiceRung::Full;
    };

    const std::uint64_t batch = report_.batches - 1;
    double batch_span = 0.0;
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        const Admit d = decisions_[i];
        batch_span = std::max(batch_span, batch_cost_[i]);
        if (timeline_enabled_) {
            const auto robot = static_cast<std::uint32_t>(i);
            if (d != prev_decisions_[i]) {
                FleetTimeline::Marker m;
                m.robot = robot;
                m.batch = batch;
                m.atSeconds = virtual_now_;
                m.kind = TimelineMarker::RungChange;
                m.from = to_rung(prev_decisions_[i]);
                m.to = to_rung(d);
                timeline_.recordMarker(m);
            }
            if (d == Admit::Full || d == Admit::Degraded) {
                FleetTimeline::SolveSpan span;
                span.robot = robot;
                span.batch = batch;
                span.startSeconds = virtual_now_;
                span.durationSeconds = batch_cost_[i];
                span.rung = to_rung(d);
                span.status = results_[i].status;
                span.iterations = results_[i].iterations;
                timeline_.recordSpan(span);
            } else {
                FleetTimeline::Marker m;
                m.robot = robot;
                m.batch = batch;
                m.atSeconds = virtual_now_;
                switch (d) {
                  case Admit::Backup:
                    m.kind = poisoned_[i]
                                 ? TimelineMarker::SensorDemoted
                                 : TimelineMarker::ServedFromBackup;
                    break;
                  case Admit::Shed:
                    m.kind = TimelineMarker::Shed;
                    break;
                  default:
                    m.kind = TimelineMarker::BadInput;
                    break;
                }
                timeline_.recordMarker(m);
            }
        }
        if (timeline_enabled_ && link_) {
            auto mark = [&](TimelineMarker kind) {
                FleetTimeline::Marker m;
                m.robot = static_cast<std::uint32_t>(i);
                m.batch = batch;
                m.atSeconds = virtual_now_;
                m.kind = kind;
                timeline_.recordMarker(m);
            };
            if (link_->wentDown(i))
                mark(TimelineMarker::LinkDown);
            if (link_->cameUp(i))
                mark(TimelineMarker::LinkUp);
            if (link_->wasExtrapolated(i))
                mark(TimelineMarker::StateExtrapolated);
            if (link_->wasStaleDemoted(i))
                mark(TimelineMarker::StaleDemoted);
            if (link_->wasPlanMissed(i))
                mark(TimelineMarker::PlanMissed);
        }
        prev_decisions_[i] = d;
    }

    // Drain the upgrade state machine's queued markers (phase starts,
    // canary switches, commits, rollbacks) onto the same virtual-time
    // axis; queue order is coordinator-only and thus deterministic.
    if (upgrade_) {
        if (timeline_enabled_) {
            for (const UpgradeManager::PendingMarker &p :
                 upgrade_->pendingMarkers()) {
                FleetTimeline::Marker m;
                m.robot = p.robot;
                m.batch = batch;
                m.atSeconds = virtual_now_;
                m.kind = p.kind;
                timeline_.recordMarker(m);
            }
        }
        upgrade_->clearPendingMarkers();
    }

    // Advance the virtual clock by one batch period: the configured
    // budget when admission is on (the fleet runs at a fixed rate),
    // otherwise the longest modeled solve in the batch.
    virtual_now_ += options_.batchDeadlineSeconds > 0.0
                        ? options_.batchDeadlineSeconds
                        : batch_span;
}

const std::vector<IpmSolver::Result> &
BatchController::solveAll(const std::vector<Vector> &states,
                          const std::vector<Vector> &refs)
{
    const auto t_start = std::chrono::steady_clock::now();
    states_ = &states;
    refs_ = &refs;
    error_ = nullptr;
    error_robot_ = 0;
    thrown_ = 0;

    std::fill(decisions_.begin(), decisions_.end(), Admit::Full);
    std::fill(scale_.begin(), scale_.end(), 1.0);
    if (link_) {
        // Uplink half of the period: robots transmit, channels impair,
        // the coordinator drains and classifies. Solves run against
        // the link's served view (delivered or extrapolated states);
        // robots past the staleness bound drop into the existing
        // admission ladder, dead links are shed.
        link_->beginPeriod(report_.batches, states, refs);
        states_ = &link_->servedStates();
        for (std::size_t i = 0; i < solvers_.size(); ++i) {
            switch (link_->service(i)) {
              case FleetLink::Service::Stale:
                decisions_[i] = Admit::Backup;
                break;
              case FleetLink::Service::Down:
                decisions_[i] = Admit::Shed;
                break;
              default:
                break;
            }
        }
    }
    validateInputs();
    runAdmission();
    applyBudgets();
    next_.store(0, std::memory_order_relaxed);

    if (workers_.empty()) {
        drainQueue();
        finishDrain();
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            pending_ = workers_.size();
            ++generation_;
        }
        cv_work_.notify_all();
        std::unique_lock<std::mutex> lock(mutex_);
        cv_done_.wait(lock, [&] { return pending_ == 0; });
    }

    if (link_)
        finishLinkPeriod();

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    report_.batches += 1;
    report_.solves += solvers_.size();
    report_.lastBatchSeconds = seconds;
    report_.totalBatchSeconds += seconds;
    report_.robotsPerSecond =
        seconds > 0.0 ? static_cast<double>(solvers_.size()) / seconds
                      : 0.0;
    report_.lastBatchAllocations = 0;
    report_.lastBatchFailures = 0;
    report_.lastBatchSaturations = 0;
    report_.lastBatchDivByZeros = 0;
    report_.lastBatchFaultsInjected = 0;
    report_.lastBatchNumericDegraded = 0;
    report_.lastBatchAccelFaults = 0;
    report_.lastBatchSelfCheck = SelfCheckStats();
    OverloadReport &ov = report_.overload;
    ov.lastBatchDegraded = 0;
    ov.lastBatchServedFromBackup = 0;
    ov.lastBatchShed = 0;
    ov.lastBatchBadInput = 0;
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        const bool solved = decisions_[i] == Admit::Full ||
                            decisions_[i] == Admit::Degraded;
        if (solved) {
            const SolveStats &st = servingSolver(i).lastStats();
            report_.totalIterations +=
                static_cast<std::uint64_t>(st.iterations);
            report_.totalKktFlops += st.riccatiFlops;
            report_.lastBatchAllocations += st.heapAllocations;
            if (!st.converged)
                report_.unconverged += 1;
            // Per-robot numeric events: SolveStats carries the
            // worker's thread-local counter deltas, so summing here
            // gives the coordinator an exact batch total regardless
            // of which thread solved which robot.
            report_.lastBatchSaturations += st.numeric.saturations;
            report_.lastBatchDivByZeros += st.numeric.divByZeros;
            report_.lastBatchFaultsInjected += st.numeric.faultsInjected;
            report_.lastBatchSelfCheck.merge(st.numeric.selfCheck);
        }
        // results_[i].status is authoritative: the overload ladder,
        // sensor gate, and exception path all stamp it without going
        // through the solver.
        const SolveStatus status = results_[i].status;
        report_.statuses[i] = status;
        if (!statusUsable(status))
            report_.lastBatchFailures += 1;
        switch (status) {
          case SolveStatus::NumericDegraded:
            report_.lastBatchNumericDegraded += 1;
            break;
          case SolveStatus::AccelFault:
            report_.lastBatchAccelFaults += 1;
            break;
          case SolveStatus::DegradedBudget:
            ov.lastBatchDegraded += 1;
            break;
          case SolveStatus::ServedFromBackup:
            ov.lastBatchServedFromBackup += 1;
            break;
          case SolveStatus::Shed:
            ov.lastBatchShed += 1;
            break;
          case SolveStatus::BadInput:
            ov.lastBatchBadInput += 1;
            break;
          default:
            break;
        }
    }
    report_.failures += report_.lastBatchFailures;
    report_.lastBatchExceptions = thrown_;
    report_.exceptions += thrown_;
    report_.lastExceptionRobot = -1;
    report_.lastExceptionMessage.clear();
    if (error_) {
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(error_);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        report_.lastExceptionRobot =
            static_cast<std::int64_t>(error_robot_);
        report_.lastExceptionMessage = what;
        error_ = nullptr;
    }
    report_.saturations += report_.lastBatchSaturations;
    report_.divByZeros += report_.lastBatchDivByZeros;
    report_.faultsInjected += report_.lastBatchFaultsInjected;
    report_.accelFaults += report_.lastBatchAccelFaults;
    report_.selfCheck.merge(report_.lastBatchSelfCheck);
    ov.degraded += ov.lastBatchDegraded;
    ov.servedFromBackup += ov.lastBatchServedFromBackup;
    ov.shed += ov.lastBatchShed;
    ov.badInput += ov.lastBatchBadInput;
    ov.poisoned += ov.lastBatchPoisoned;
    ov.utilization = ov.budgetSeconds > 0.0
                         ? seconds / ov.budgetSeconds
                         : 0.0;
    ov.batchLatency.sample(seconds);
    if (link_)
        ov.link = link_->report();

    updateCostModel();
    finishUpgradePeriod();
    recordTimeline();
    recordFlight();

    states_ = nullptr;
    refs_ = nullptr;
    return results_;
}

void
BatchController::finishUpgradePeriod()
{
    if (!upgrade_)
        return;
    upgrade_->finishPeriod(batch_cost_, cost_hook_ != nullptr);
    report_.upgrade = upgrade_->report();
}

UpgradeScheduleStatus
BatchController::scheduleUpgrade(const UpgradeCandidate &candidate)
{
    if (!upgrade_)
        upgrade_ = std::make_unique<UpgradeManager>(options_,
                                                    solvers_.size());
    const UpgradeScheduleStatus status =
        upgrade_->schedule(candidate, solvers_[0]->problem());
    report_.upgrade = upgrade_->report();
    return status;
}

void
BatchController::abortUpgrade()
{
    if (!upgrade_)
        return;
    upgrade_->abortToIncumbent();
    report_.upgrade = upgrade_->report();
}

void
BatchController::recordFlight()
{
    if (!recorder_.enabled())
        return;
    FlightRecord rec;
    rec.period = report_.batches - 1;
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        rec.robot = static_cast<std::int32_t>(i);
        rec.status = results_[i].status;
        rec.rung = static_cast<std::int32_t>(decisions_[i]);
        rec.sensorVerdict =
            poisoned_[i]
                ? static_cast<std::int32_t>(gates_[i].lastVerdict())
                : -1;
        rec.linkService =
            link_ ? static_cast<std::int32_t>(link_->service(i)) : -1;
        rec.degraded = results_[i].degraded;
        // states_ already points at the link-served view when the link
        // fabric is on: the recorder logs what the solver actually saw.
        if (i < states_->size())
            rec.state = (*states_)[i];
        else
            rec.state = Vector();
        rec.command = results_[i].u0;
        recorder_.push(rec);
    }
}

void
BatchController::resetAll()
{
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        solvers_[i]->reset();
        backups_[i].clear();
        gates_[i].reset();
    }
    if (link_)
        link_->reset();
    if (upgrade_)
        upgrade_->resetSolvers();
}

namespace
{

void
checkpointSelfCheck(support::CheckpointWriter &w,
                    const SelfCheckStats &sc)
{
    w.u64(sc.parityChecks);
    w.u64(sc.parityErrors);
    w.u64(sc.checksumChecks);
    w.u64(sc.checksumErrors);
    w.u64(sc.watchdogTrips);
    w.u64(sc.reexecutions);
    w.u64(sc.reloads);
    w.u64(sc.cpuFallbacks);
}

bool
restoreSelfCheck(support::CheckpointReader &r, SelfCheckStats &sc)
{
    return r.u64(&sc.parityChecks) && r.u64(&sc.parityErrors) &&
           r.u64(&sc.checksumChecks) && r.u64(&sc.checksumErrors) &&
           r.u64(&sc.watchdogTrips) && r.u64(&sc.reexecutions) &&
           r.u64(&sc.reloads) && r.u64(&sc.cpuFallbacks);
}

bool
readDoubles(support::CheckpointReader &r, std::vector<double> &v)
{
    return r.f64Array(v.data(), v.size());
}

} // namespace

void
BatchController::coldStart()
{
    // Drop any upgrade state machine first: cold start means the
    // as-constructed controller, which has no candidate staged.
    upgrade_.reset();
    resetAll();
    const std::size_t n = solvers_.size();
    report_ = BatchReport();
    report_.robots = n;
    report_.threads = workers_.size();
    report_.statuses.assign(n, SolveStatus::Unsolved);
    report_.overload.budgetSeconds = options_.batchDeadlineSeconds;
    const double latency_hi = options_.batchDeadlineSeconds > 0.0
                                  ? 4.0 * options_.batchDeadlineSeconds
                                  : 0.25;
    report_.overload.batchLatency = stats::Histogram(
        "batch_seconds", "Batch wall time", 0.0, latency_hi, 64);
    priority_.assign(n, 0.0);
    ewma_.assign(n, 0.0);
    prev_decisions_.assign(n, Admit::Full);
    poisoned_.assign(n, 0);
    batch_cost_.assign(n, 0.0);
    virtual_now_ = 0.0;
    timeline_.clear();
    recorder_.clear();
}

void
BatchController::checkpoint(support::CheckpointWriter &w) const
{
    const BatchReport &rp = report_;
    w.u64(solvers_.size());
    w.boolean(link_ != nullptr);

    // Lifetime report: every counter, the last-batch snapshot, and
    // the histograms. The worker-pool size is deliberately NOT stored
    // — a checkpoint written at --threads 4 must restore bitwise into
    // a --threads 1 controller (the determinism contract).
    w.u64(rp.batches);
    w.u64(rp.solves);
    w.u64(rp.totalIterations);
    w.u64(rp.totalKktFlops);
    w.u64(rp.unconverged);
    w.f64(rp.lastBatchSeconds);
    w.f64(rp.totalBatchSeconds);
    w.f64(rp.robotsPerSecond);
    w.u64(rp.lastBatchAllocations);
    for (SolveStatus s : rp.statuses)
        w.u32(static_cast<std::uint32_t>(s));
    w.u64(rp.lastBatchFailures);
    w.u64(rp.failures);
    w.u64(rp.lastBatchExceptions);
    w.u64(rp.exceptions);
    w.i64(rp.lastExceptionRobot);
    w.str(rp.lastExceptionMessage);
    w.u64(rp.lastBatchSaturations);
    w.u64(rp.lastBatchDivByZeros);
    w.u64(rp.lastBatchFaultsInjected);
    w.u64(rp.saturations);
    w.u64(rp.divByZeros);
    w.u64(rp.faultsInjected);
    w.u64(rp.lastBatchNumericDegraded);
    w.u64(rp.lastBatchAccelFaults);
    w.u64(rp.accelFaults);
    checkpointSelfCheck(w, rp.lastBatchSelfCheck);
    checkpointSelfCheck(w, rp.selfCheck);
    const OverloadReport &ov = rp.overload;
    w.f64(ov.budgetSeconds);
    w.f64(ov.projectedSeconds);
    w.f64(ov.admittedSeconds);
    w.f64(ov.utilization);
    w.u64(ov.overloadedBatches);
    w.u64(ov.lastBatchDegraded);
    w.u64(ov.lastBatchServedFromBackup);
    w.u64(ov.lastBatchShed);
    w.u64(ov.lastBatchBadInput);
    w.u64(ov.lastBatchPoisoned);
    w.u64(ov.degraded);
    w.u64(ov.servedFromBackup);
    w.u64(ov.shed);
    w.u64(ov.badInput);
    w.u64(ov.poisoned);
    ov.batchLatency.checkpoint(w);
    checkpointLinkReport(w, ov.link);

    // Admission cost model and timeline baselines.
    w.f64Array(priority_.data(), priority_.size());
    w.f64Array(ewma_.data(), ewma_.size());
    w.f64Array(batch_cost_.data(), batch_cost_.size());
    w.f64(virtual_now_);
    for (Admit d : prev_decisions_)
        w.u8(static_cast<std::uint8_t>(d));
    for (std::uint8_t p : poisoned_)
        w.u8(p);

    // Per-robot serving stacks: solver warm start, backup tail,
    // sensor gate.
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        solvers_[i]->checkpoint(w);
        backups_[i].checkpoint(w);
        gates_[i].checkpoint(w);
    }
    if (link_)
        link_->checkpoint(w);
    w.boolean(timeline_enabled_);
    timeline_.checkpoint(w);
    recorder_.checkpoint(w);
    w.boolean(upgrade_ != nullptr);
    if (upgrade_)
        upgrade_->checkpoint(w);
}

bool
BatchController::restore(support::CheckpointReader &r,
                         const UpgradeCandidate *candidate)
{
    auto fail = [&] {
        coldStart();
        return false;
    };
    if (r.status() != support::CheckpointStatus::Ok)
        return fail();
    std::uint64_t robots = 0;
    bool has_link = false;
    if (!r.u64(&robots) || robots != solvers_.size() ||
        !r.boolean(&has_link) || has_link != (link_ != nullptr))
        return fail();

    BatchReport &rp = report_;
    if (!r.u64(&rp.batches) || !r.u64(&rp.solves) ||
        !r.u64(&rp.totalIterations) || !r.u64(&rp.totalKktFlops) ||
        !r.u64(&rp.unconverged) || !r.f64(&rp.lastBatchSeconds) ||
        !r.f64(&rp.totalBatchSeconds) || !r.f64(&rp.robotsPerSecond) ||
        !r.u64(&rp.lastBatchAllocations))
        return fail();
    constexpr auto kMaxStatus =
        static_cast<std::uint32_t>(SolveStatus::Shed);
    for (SolveStatus &s : rp.statuses) {
        std::uint32_t v = 0;
        if (!r.u32(&v) || v > kMaxStatus)
            return fail();
        s = static_cast<SolveStatus>(v);
    }
    if (!r.u64(&rp.lastBatchFailures) || !r.u64(&rp.failures) ||
        !r.u64(&rp.lastBatchExceptions) || !r.u64(&rp.exceptions) ||
        !r.i64(&rp.lastExceptionRobot) ||
        !r.str(&rp.lastExceptionMessage) ||
        !r.u64(&rp.lastBatchSaturations) ||
        !r.u64(&rp.lastBatchDivByZeros) ||
        !r.u64(&rp.lastBatchFaultsInjected) ||
        !r.u64(&rp.saturations) || !r.u64(&rp.divByZeros) ||
        !r.u64(&rp.faultsInjected) ||
        !r.u64(&rp.lastBatchNumericDegraded) ||
        !r.u64(&rp.lastBatchAccelFaults) || !r.u64(&rp.accelFaults) ||
        !restoreSelfCheck(r, rp.lastBatchSelfCheck) ||
        !restoreSelfCheck(r, rp.selfCheck))
        return fail();
    OverloadReport &ov = rp.overload;
    if (!r.f64(&ov.budgetSeconds) || !r.f64(&ov.projectedSeconds) ||
        !r.f64(&ov.admittedSeconds) || !r.f64(&ov.utilization) ||
        !r.u64(&ov.overloadedBatches) || !r.u64(&ov.lastBatchDegraded) ||
        !r.u64(&ov.lastBatchServedFromBackup) ||
        !r.u64(&ov.lastBatchShed) || !r.u64(&ov.lastBatchBadInput) ||
        !r.u64(&ov.lastBatchPoisoned) || !r.u64(&ov.degraded) ||
        !r.u64(&ov.servedFromBackup) || !r.u64(&ov.shed) ||
        !r.u64(&ov.badInput) || !r.u64(&ov.poisoned) ||
        !ov.batchLatency.restore(r) || !restoreLinkReport(r, ov.link))
        return fail();

    if (!readDoubles(r, priority_) || !readDoubles(r, ewma_) ||
        !readDoubles(r, batch_cost_) || !r.f64(&virtual_now_))
        return fail();
    constexpr auto kMaxAdmit = static_cast<std::uint8_t>(Admit::BadInput);
    for (Admit &d : prev_decisions_) {
        std::uint8_t v = 0;
        if (!r.u8(&v) || v > kMaxAdmit)
            return fail();
        d = static_cast<Admit>(v);
    }
    for (std::uint8_t &p : poisoned_)
        if (!r.u8(&p))
            return fail();

    for (std::size_t i = 0; i < solvers_.size(); ++i)
        if (!solvers_[i]->restore(r) || !backups_[i].restore(r) ||
            !gates_[i].restore(r))
            return fail();
    if (link_ && !link_->restore(r))
        return fail();
    if (!r.boolean(&timeline_enabled_) || !timeline_.restore(r) ||
        !recorder_.restore(r))
        return fail();
    bool has_upgrade = false;
    if (!r.boolean(&has_upgrade))
        return fail();
    upgrade_.reset();
    report_.upgrade = UpgradeReport();
    if (has_upgrade) {
        auto manager = std::make_unique<UpgradeManager>(
            options_, solvers_.size());
        if (!manager->restore(r, candidate))
            return fail();
        upgrade_ = std::move(manager);
        report_.upgrade = upgrade_->report();
    }
    return true;
}

std::string
batchMetricsJson(const BatchReport &report, bool include_timing)
{
    using stats::Scalar;
    using stats::StatGroup;

    auto scalar = [](const char *name, const char *desc, double v) {
        Scalar s(name, desc);
        s.set(v);
        return s;
    };
    auto count = [&](const char *name, const char *desc,
                     std::uint64_t v) {
        return scalar(name, desc, static_cast<double>(v));
    };

    const OverloadReport &ov = report.overload;
    std::vector<Scalar> scalars;
    scalars.reserve(32);
    scalars.push_back(count("robots", "fleet size", report.robots));
    scalars.push_back(count("batches", "solveAll() calls",
                            report.batches));
    scalars.push_back(count("solves", "robot-solves", report.solves));
    scalars.push_back(count("totalIterations", "summed IPM iterations",
                            report.totalIterations));
    scalars.push_back(count("totalKktFlops", "summed KKT-backend flops",
                            report.totalKktFlops));
    scalars.push_back(count("unconverged", "solves that hit the cap",
                            report.unconverged));
    scalars.push_back(count("lastBatchAllocations",
                            "heap allocations in the last batch",
                            report.lastBatchAllocations));
    scalars.push_back(count("lastBatchFailures",
                            "non-usable solves in the last batch",
                            report.lastBatchFailures));
    scalars.push_back(count("failures", "lifetime non-usable solves",
                            report.failures));
    scalars.push_back(count("exceptions",
                            "lifetime quarantined exceptions",
                            report.exceptions));
    scalars.push_back(count("saturations", "fixed-point saturations",
                            report.saturations));
    scalars.push_back(count("divByZeros", "fixed-point div-by-zeros",
                            report.divByZeros));
    scalars.push_back(count("faultsInjected", "injected bit flips",
                            report.faultsInjected));
    scalars.push_back(count("numericDegraded",
                            "NumericDegraded solves, last batch",
                            report.lastBatchNumericDegraded));
    scalars.push_back(count("accelFaults",
                            "lifetime AccelFault solves",
                            report.accelFaults));
    const SelfCheckStats &sc = report.selfCheck;
    scalars.push_back(count("parityErrors", "self-check parity hits",
                            sc.parityErrors));
    scalars.push_back(count("checksumErrors",
                            "self-check image-checksum hits",
                            sc.checksumErrors));
    scalars.push_back(count("watchdogTrips", "self-check watchdog trips",
                            sc.watchdogTrips));
    scalars.push_back(count("accelReexecutions",
                            "recovery rung-1 re-executions",
                            sc.reexecutions));
    scalars.push_back(count("accelReloads",
                            "recovery rung-2 image reloads",
                            sc.reloads));
    scalars.push_back(count("accelCpuFallbacks",
                            "recovery rung-3 CPU fallbacks",
                            sc.cpuFallbacks));
    scalars.push_back(scalar("budgetSeconds",
                             "batch budget (< 0 = admission off)",
                             ov.budgetSeconds));
    scalars.push_back(scalar("projectedSeconds",
                             "pre-admission projected batch cost",
                             ov.projectedSeconds));
    scalars.push_back(scalar("admittedSeconds",
                             "post-admission projected batch cost",
                             ov.admittedSeconds));
    scalars.push_back(count("overloadedBatches",
                            "batches projected over budget",
                            ov.overloadedBatches));
    scalars.push_back(count("degraded", "lifetime degraded solves",
                            ov.degraded));
    scalars.push_back(count("servedFromBackup",
                            "lifetime backup-tail serves",
                            ov.servedFromBackup));
    scalars.push_back(count("shed", "lifetime sheds", ov.shed));
    scalars.push_back(count("badInput", "lifetime input rejections",
                            ov.badInput));
    scalars.push_back(count("poisoned",
                            "lifetime sensor-gate demotions",
                            ov.poisoned));
    // Link-health counters are virtual-time-derived (periods and pure
    // chaos decisions, never the wall clock), so unlike the timing
    // fields below they are part of the replay-stable snapshot.
    const LinkReport &ln = ov.link;
    scalars.push_back(count("linkUplinkSent", "uplink transmissions",
                            ln.uplinkSent));
    scalars.push_back(count("linkUplinkDropped", "uplinks lost",
                            ln.uplinkDropped));
    scalars.push_back(count("linkUplinkDelivered", "uplinks delivered",
                            ln.uplinkDelivered));
    scalars.push_back(count("linkUplinkDuplicates",
                            "uplink duplicate copies",
                            ln.uplinkDuplicates));
    scalars.push_back(count("linkUplinkReordered",
                            "uplinks delivered behind a newer seq",
                            ln.uplinkReordered));
    scalars.push_back(count("linkDownlinkSent",
                            "downlink transmissions", ln.downlinkSent));
    scalars.push_back(count("linkDownlinkDropped", "downlinks lost",
                            ln.downlinkDropped));
    scalars.push_back(count("linkDownlinkDelivered",
                            "downlinks delivered",
                            ln.downlinkDelivered));
    scalars.push_back(count("linkDownlinkDuplicates",
                            "downlink duplicate copies",
                            ln.downlinkDuplicates));
    scalars.push_back(count("linkDownlinkReordered",
                            "downlinks delivered behind a newer seq",
                            ln.downlinkReordered));
    scalars.push_back(count("linkRetransmits",
                            "plan retransmissions", ln.retransmits));
    scalars.push_back(count("linkAcksDelivered",
                            "acks that advanced the acked seq",
                            ln.acksDelivered));
    scalars.push_back(count("linkPlanMisses",
                            "robot-periods on the buffered tail",
                            ln.planMisses));
    scalars.push_back(count("linkStatesExtrapolated",
                            "controller-side dynamics rollouts",
                            ln.statesExtrapolated));
    scalars.push_back(count("linkStaleDemotions",
                            "robot-periods past the staleness bound",
                            ln.staleDemotions));
    scalars.push_back(count("linkDownEvents", "up -> down transitions",
                            ln.linkDownEvents));
    scalars.push_back(count("linkUpEvents", "down -> up transitions",
                            ln.linkUpEvents));
    scalars.push_back(count("linkDownRobotPeriods",
                            "robot-periods with the link down",
                            ln.linkDownRobotPeriods));
    // Live-upgrade rollout accounting (mpc/upgrade.hh): all counters
    // are virtual-time/decision-derived, so they belong in the
    // replay-stable snapshot. All zero until an upgrade is scheduled.
    const UpgradeReport &up = report.upgrade;
    scalars.push_back(count("upgradeVersion",
                            "serving controller version",
                            up.version));
    scalars.push_back(count("upgradePhase",
                            "rollout phase (UpgradePhase value)",
                            up.phase));
    scalars.push_back(count("upgradesScheduled",
                            "scheduleUpgrade() attempts",
                            up.scheduled));
    scalars.push_back(count("upgradeRejectedImages",
                            "candidate images verifyImage refused",
                            up.rejectedImages));
    scalars.push_back(count("upgradeRejectedIncompatible",
                            "candidates with a mismatched shape",
                            up.rejectedIncompatible));
    scalars.push_back(count("upgradesCommitted", "fleet-wide commits",
                            up.committed));
    scalars.push_back(count("upgradesRolledBack",
                            "canary-phase rollbacks", up.rolledBack));
    scalars.push_back(count("upgradesRejected",
                            "shadow-phase rejections",
                            up.rejectedCandidates));
    scalars.push_back(count("upgradeShadowSolves",
                            "incumbent/candidate solve pairs",
                            up.shadowSolves));
    scalars.push_back(count("upgradeCanaryRobots",
                            "size of the last canary set",
                            up.canaryRobots));
    scalars.push_back(count("upgradeDivergenceWarns",
                            "command components past the warn band",
                            up.divergenceWarns));
    scalars.push_back(count("upgradeDivergenceFails",
                            "command components past the fail band",
                            up.divergenceFails));
    scalars.push_back(scalar("upgradeMaxDivergence",
                             "largest |candidate - incumbent| command",
                             up.maxDivergence));
    scalars.push_back(scalar("upgradeIncumbentCostEwma",
                             "incumbent fleet EWMA modeled cost",
                             up.incumbentCostEwma));
    scalars.push_back(scalar("upgradeCandidateCostEwma",
                             "candidate fleet EWMA modeled cost",
                             up.candidateCostEwma));
    scalars.push_back(count("upgradeRollbackDivergence",
                            "guard trips: command divergence",
                            up.rollbackDivergence));
    scalars.push_back(count("upgradeRollbackFaultRate",
                            "guard trips: fault-rate regression",
                            up.rollbackFaultRate));
    scalars.push_back(count("upgradeRollbackLatency",
                            "guard trips: latency budget",
                            up.rollbackLatency));
    if (include_timing) {
        // Environment-dependent fields: worker-pool size and wall
        // clocks vary across machines and thread counts, so the
        // replay-stable snapshot (include_timing = false) omits them.
        scalars.push_back(count("threads", "worker threads (0 = inline)",
                                report.threads));
        scalars.push_back(scalar("lastBatchSeconds",
                                 "wall time of the last batch",
                                 report.lastBatchSeconds));
        scalars.push_back(scalar("totalBatchSeconds",
                                 "summed batch wall time",
                                 report.totalBatchSeconds));
        scalars.push_back(scalar("robotsPerSecond",
                                 "throughput of the last batch",
                                 report.robotsPerSecond));
        scalars.push_back(scalar("utilization",
                                 "lastBatchSeconds / budgetSeconds",
                                 ov.utilization));
    }

    StatGroup group("batch");
    for (Scalar &s : scalars)
        group.add(&s);
    // The link histograms count virtual periods, so they are
    // replay-stable and always included; the latency histogram is
    // wall-clock-derived by construction, so it rides the
    // include_timing switch with the other wall fields.
    stats::Histogram link_latency = ln.deliveryLatency;
    stats::Histogram link_staleness = ln.staleness;
    group.add(&link_latency);
    group.add(&link_staleness);
    stats::Histogram latency = ov.batchLatency;
    if (include_timing)
        group.add(&latency);
    return group.toJson();
}

} // namespace robox::mpc
