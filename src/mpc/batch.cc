/**
 * @file
 * Implementation of the batched multi-robot MPC controller.
 */

#include "mpc/batch.hh"

#include <chrono>
#include <string>

#include "support/logging.hh"

namespace robox::mpc
{

BatchController::BatchController(const dsl::ModelSpec &model,
                                 const MpcOptions &options,
                                 std::size_t num_robots,
                                 std::size_t num_threads)
{
    robox_assert(num_robots > 0);
    solvers_.reserve(num_robots);
    for (std::size_t i = 0; i < num_robots; ++i)
        solvers_.push_back(std::make_unique<IpmSolver>(model, options));
    results_.resize(num_robots);
    report_.statuses.assign(num_robots, SolveStatus::Unsolved);

    std::size_t pool = std::min(num_threads, num_robots);
    if (pool > 1) {
        workers_.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }
    report_.robots = num_robots;
    report_.threads = workers_.size();
}

BatchController::~BatchController()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
BatchController::drainQueue()
{
    const std::size_t count = states_->size();
    for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        try {
            results_[i] = solvers_[i]->solve((*states_)[i], (*refs_)[i]);
        } catch (...) {
            // solve() handles numeric failures via SolveStatus, so
            // anything arriving here is unexpected. Quarantine it to
            // this robot: record the fault and keep draining so the
            // rest of the fleet still gets its commands.
            results_[i].status = SolveStatus::NumericFailure;
            results_[i].converged = false;
            results_[i].degraded = true;
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) {
                error_ = std::current_exception();
                error_robot_ = i;
            }
        }
    }
}

void
BatchController::finishDrain()
{
    // Saturation/div-by-zero events were counted in this thread's
    // thread-local Fixed statistics, invisible to the coordinator.
    // Fold them into the process-wide aggregates now, once per batch,
    // so Fixed::globalSaturationCount() is complete after solveAll().
    Fixed::flushCounts();
}

void
BatchController::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_work_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        drainQueue();
        finishDrain();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                cv_done_.notify_all();
        }
    }
}

const std::vector<IpmSolver::Result> &
BatchController::solveAll(const std::vector<Vector> &states,
                          const std::vector<Vector> &refs)
{
    robox_assert(states.size() == solvers_.size());
    robox_assert(refs.size() == solvers_.size());

    const auto t_start = std::chrono::steady_clock::now();
    states_ = &states;
    refs_ = &refs;
    error_ = nullptr;
    error_robot_ = 0;
    next_.store(0, std::memory_order_relaxed);

    if (workers_.empty()) {
        drainQueue();
        finishDrain();
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            pending_ = workers_.size();
            ++generation_;
        }
        cv_work_.notify_all();
        std::unique_lock<std::mutex> lock(mutex_);
        cv_done_.wait(lock, [&] { return pending_ == 0; });
    }

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    report_.batches += 1;
    report_.solves += solvers_.size();
    report_.lastBatchSeconds = seconds;
    report_.totalBatchSeconds += seconds;
    report_.robotsPerSecond =
        seconds > 0.0 ? static_cast<double>(solvers_.size()) / seconds
                      : 0.0;
    report_.lastBatchAllocations = 0;
    report_.lastBatchFailures = 0;
    report_.lastBatchSaturations = 0;
    report_.lastBatchDivByZeros = 0;
    report_.lastBatchFaultsInjected = 0;
    report_.lastBatchNumericDegraded = 0;
    for (std::size_t i = 0; i < solvers_.size(); ++i) {
        const SolveStats &st = solvers_[i]->lastStats();
        report_.totalIterations +=
            static_cast<std::uint64_t>(st.iterations);
        report_.totalKktFlops += st.riccatiFlops;
        report_.lastBatchAllocations += st.heapAllocations;
        if (!st.converged)
            report_.unconverged += 1;
        // Per-robot numeric events: SolveStats carries the worker's
        // thread-local counter deltas, so summing here gives the
        // coordinator an exact batch total regardless of which thread
        // solved which robot.
        report_.lastBatchSaturations += st.numeric.saturations;
        report_.lastBatchDivByZeros += st.numeric.divByZeros;
        report_.lastBatchFaultsInjected += st.numeric.faultsInjected;
        // results_[i].status is authoritative: the exception path in
        // drainQueue stamps it without going through the solver.
        report_.statuses[i] = results_[i].status;
        if (!statusUsable(results_[i].status))
            report_.lastBatchFailures += 1;
        if (results_[i].status == SolveStatus::NumericDegraded)
            report_.lastBatchNumericDegraded += 1;
    }
    report_.failures += report_.lastBatchFailures;
    report_.saturations += report_.lastBatchSaturations;
    report_.divByZeros += report_.lastBatchDivByZeros;
    report_.faultsInjected += report_.lastBatchFaultsInjected;

    states_ = nullptr;
    refs_ = nullptr;
    if (error_) {
        std::string what = "unknown exception";
        try {
            std::rethrow_exception(error_);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        fatal("batch: robot {} threw: {}", error_robot_, what);
    }
    return results_;
}

void
BatchController::resetAll()
{
    for (auto &solver : solvers_)
        solver->reset();
}

} // namespace robox::mpc
