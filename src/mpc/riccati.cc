/**
 * @file
 * Implementation of the backward Riccati recursion and forward rollout.
 *
 * The workspace overload is the production path: every intermediate of
 * the recursion lives in the caller's RiccatiWorkspace and the steps
 * are written into the caller's RiccatiSolution, so a warmed-up solver
 * iterates with zero heap traffic. The legacy value-returning overload
 * wraps it for tests and one-shot callers.
 */

#include "mpc/riccati.hh"

#include "linalg/cholesky.hh"
#include "support/logging.hh"

namespace robox::mpc
{

namespace
{

/** Approximate flop count of an m x n by n x p matrix product. */
std::uint64_t
matmulFlops(std::size_t m, std::size_t n, std::size_t p)
{
    return static_cast<std::uint64_t>(2) * m * n * p;
}

/** Ensure a stage-indexed vector-of-vectors has the right shape. */
void
sizeStageVectors(std::vector<Vector> &vs, std::size_t count,
                 std::size_t dim)
{
    if (vs.size() != count)
        vs.assign(count, Vector(dim));
    for (Vector &v : vs)
        if (v.size() != dim)
            v.resize(dim);
}

} // namespace

void
RiccatiWorkspace::resize(std::size_t n_stages, std::size_t nx,
                         std::size_t nu)
{
    auto sizeMat = [](Matrix &m, std::size_t r, std::size_t c) {
        if (m.rows() != r || m.cols() != c)
            m.resize(r, c);
    };
    auto sizeVec = [](Vector &v, std::size_t n) {
        if (v.size() != n)
            v.resize(n);
    };
    sizeMat(p, nx, nx);
    sizeVec(pv, nx);
    sizeMat(pa, nx, nx);
    sizeMat(pb, nx, nu);
    sizeVec(pc, nx);
    sizeMat(fxx, nx, nx);
    sizeMat(fux, nu, nx);
    sizeMat(fuu, nu, nu);
    sizeVec(fx, nx);
    sizeVec(fu, nu);
    sizeMat(l, nu, nu);
    if (gainK.size() != n_stages)
        gainK.assign(n_stages, Matrix(nu, nx));
    for (Matrix &k : gainK)
        sizeMat(k, nu, nx);
    sizeStageVectors(gainD, n_stages, nu);
}

FactorStatus
solveRiccati(const std::vector<StageQp> &stages, const Matrix &qn,
             const Vector &qnv, const Vector &dx0,
             double initial_regularization, RiccatiWorkspace &ws,
             RiccatiSolution &sol)
{
    const std::size_t n_stages = stages.size();
    robox_assert(n_stages > 0);
    const std::size_t nx = stages[0].a.rows();
    const std::size_t nu = stages[0].b.cols();

    ws.resize(n_stages, nx, nu);
    sizeStageVectors(sol.dx, n_stages + 1, nx);
    sizeStageVectors(sol.du, n_stages, nu);
    sol.flops = 0;
    sol.regularization = 0.0;

    // Backward pass: cost-to-go P_k, p_k and feedback gains K_k, d_k.
    ws.p.copyFrom(qn);
    ws.pv.copyFrom(qnv);
    double total_reg = 0.0;

    for (std::size_t kk = n_stages; kk-- > 0;) {
        const StageQp &st = stages[kk];

        // P' A and P' B reused across the stage updates.
        multiplyInto(ws.p, st.a, ws.pa);
        multiplyInto(ws.p, st.b, ws.pb);
        multiplyInto(ws.p, st.c, ws.pc);
        ws.pc += ws.pv;
        sol.flops += matmulFlops(nx, nx, nx) + matmulFlops(nx, nx, nu) +
                     matmulFlops(nx, nx, 1);

        ws.fxx.copyFrom(st.q);
        transposeMulAddInto(st.a, ws.pa, ws.fxx);
        ws.fux.copyFrom(st.s);
        transposeMulAddInto(st.b, ws.pa, ws.fux);
        ws.fuu.copyFrom(st.r);
        transposeMulAddInto(st.b, ws.pb, ws.fuu);
        ws.fx.copyFrom(st.qv);
        transposeMulAddInto(st.a, ws.pc, ws.fx);
        ws.fu.copyFrom(st.rv);
        transposeMulAddInto(st.b, ws.pc, ws.fu);
        sol.flops += matmulFlops(nx, nx, nx) + matmulFlops(nu, nx, nx) +
                     matmulFlops(nu, nx, nu) + matmulFlops(nx, nx, 1) +
                     matmulFlops(nu, nx, 1);

        // Factor the input Hessian, shifting the diagonal if needed.
        // A factorization failure (possible only for NaN/Inf stage
        // data once the capped bump ladder is exhausted) aborts the
        // recursion with a status; the IPM's recovery ladder owns what
        // happens next.
        double reg = initial_regularization;
        FactorStatus status = choleskyRegularizedInto(ws.fuu, reg, ws.l);
        if (status != FactorStatus::Ok)
            return status;
        total_reg += reg;
        sol.flops += static_cast<std::uint64_t>(nu) * nu * nu / 3;

        // K = F_uu^{-1} F_ux, d = F_uu^{-1} f_u.
        ws.gainK[kk].copyFrom(ws.fux);
        choleskySolveMatrixInPlace(ws.l, ws.gainK[kk]);
        ws.gainD[kk].copyFrom(ws.fu);
        choleskySolveInPlace(ws.l, ws.gainD[kk]);
        sol.flops += matmulFlops(nu, nu, nx) + matmulFlops(nu, nu, 1);

        // Cost-to-go update: P = F_xx - F_ux' K, p = f_x - F_ux' d.
        ws.p.copyFrom(ws.fxx);
        transposeMulSubInto(ws.fux, ws.gainK[kk], ws.p);
        ws.pv.copyFrom(ws.fx);
        transposeMulSubInto(ws.fux, ws.gainD[kk], ws.pv);
        sol.flops += matmulFlops(nx, nu, nx) + matmulFlops(nx, nu, 1);

        // Symmetrize to suppress drift from rounding.
        for (std::size_t i = 0; i < nx; ++i) {
            for (std::size_t j = i + 1; j < nx; ++j) {
                double avg = 0.5 * (ws.p(i, j) + ws.p(j, i));
                ws.p(i, j) = avg;
                ws.p(j, i) = avg;
            }
        }
    }

    // Forward rollout.
    sol.dx[0].copyFrom(dx0);
    for (std::size_t kk = 0; kk < n_stages; ++kk) {
        const StageQp &st = stages[kk];
        // du = -(K dx + d).
        multiplyInto(ws.gainK[kk], sol.dx[kk], sol.du[kk]);
        sol.du[kk] += ws.gainD[kk];
        sol.du[kk] *= -1.0;
        // dx_{k+1} = A dx + B du + c.
        multiplyInto(st.a, sol.dx[kk], sol.dx[kk + 1]);
        multiplyAddInto(st.b, sol.du[kk], sol.dx[kk + 1]);
        sol.dx[kk + 1] += st.c;
        sol.flops += matmulFlops(nu, nx, 1) + matmulFlops(nx, nx, 1) +
                     matmulFlops(nx, nu, 1);
    }

    sol.regularization = total_reg;
    return FactorStatus::Ok;
}

RiccatiSolution
solveRiccati(const std::vector<StageQp> &stages, const Matrix &qn,
             const Vector &qnv, const Vector &dx0,
             double initial_regularization)
{
    RiccatiWorkspace ws;
    RiccatiSolution sol;
    sol.status = solveRiccati(stages, qn, qnv, dx0,
                              initial_regularization, ws, sol);
    return sol;
}

} // namespace robox::mpc
