/**
 * @file
 * Implementation of the backward Riccati recursion and forward rollout.
 */

#include "mpc/riccati.hh"

#include "linalg/cholesky.hh"
#include "support/logging.hh"

namespace robox::mpc
{

namespace
{

/** Approximate flop count of an m x n by n x p matrix product. */
std::uint64_t
matmulFlops(std::size_t m, std::size_t n, std::size_t p)
{
    return static_cast<std::uint64_t>(2) * m * n * p;
}

} // namespace

RiccatiSolution
solveRiccati(const std::vector<StageQp> &stages, const Matrix &qn,
             const Vector &qnv, const Vector &dx0,
             double initial_regularization)
{
    const std::size_t n_stages = stages.size();
    robox_assert(n_stages > 0);
    const std::size_t nx = stages[0].a.rows();
    const std::size_t nu = stages[0].b.cols();

    RiccatiSolution sol;
    sol.dx.resize(n_stages + 1);
    sol.du.resize(n_stages);

    // Backward pass: cost-to-go P_k, p_k and feedback gains K_k, d_k.
    std::vector<Matrix> gain_k(n_stages);
    std::vector<Vector> gain_d(n_stages);

    Matrix p_mat = qn;
    Vector p_vec = qnv;
    double total_reg = 0.0;

    for (std::size_t kk = n_stages; kk-- > 0;) {
        const StageQp &st = stages[kk];

        // P' A and P' B reused across the stage updates.
        Matrix pa = p_mat * st.a;
        Matrix pb = p_mat * st.b;
        Vector pc = p_vec + p_mat * st.c;
        sol.flops += matmulFlops(nx, nx, nx) + matmulFlops(nx, nx, nu) +
                     matmulFlops(nx, nx, 1);

        Matrix f_xx = st.q + st.a.transposeMul(pa);
        Matrix f_ux = st.s + st.b.transposeMul(pa);
        Matrix f_uu = st.r + st.b.transposeMul(pb);
        Vector f_x = st.qv + st.a.transposeMul(pc);
        Vector f_u = st.rv + st.b.transposeMul(pc);
        sol.flops += matmulFlops(nx, nx, nx) + matmulFlops(nu, nx, nx) +
                     matmulFlops(nu, nx, nu) + matmulFlops(nx, nx, 1) +
                     matmulFlops(nu, nx, 1);

        // Factor the input Hessian, shifting the diagonal if needed.
        double reg = initial_regularization;
        Matrix l = choleskyRegularized(f_uu, reg);
        total_reg += reg;
        sol.flops += static_cast<std::uint64_t>(nu) * nu * nu / 3;

        // K = F_uu^{-1} F_ux, d = F_uu^{-1} f_u.
        gain_k[kk] = choleskySolveMatrix(l, f_ux);
        gain_d[kk] = choleskySolve(l, f_u);
        sol.flops += matmulFlops(nu, nu, nx) + matmulFlops(nu, nu, 1);

        // Cost-to-go update: P = F_xx - F_ux' K, p = f_x - F_ux' d.
        p_mat = f_xx - f_ux.transposeMul(gain_k[kk]);
        p_vec = f_x - f_ux.transposeMul(gain_d[kk]);
        sol.flops += matmulFlops(nx, nu, nx) + matmulFlops(nx, nu, 1);

        // Symmetrize to suppress drift from rounding.
        for (std::size_t i = 0; i < nx; ++i) {
            for (std::size_t j = i + 1; j < nx; ++j) {
                double avg = 0.5 * (p_mat(i, j) + p_mat(j, i));
                p_mat(i, j) = avg;
                p_mat(j, i) = avg;
            }
        }
    }

    // Forward rollout.
    sol.dx[0] = dx0;
    for (std::size_t kk = 0; kk < n_stages; ++kk) {
        const StageQp &st = stages[kk];
        sol.du[kk] = -(gain_k[kk] * sol.dx[kk]) - gain_d[kk];
        sol.dx[kk + 1] = st.a * sol.dx[kk] + st.b * sol.du[kk] + st.c;
        sol.flops += matmulFlops(nu, nx, 1) + matmulFlops(nx, nx, 1) +
                     matmulFlops(nx, nu, 1);
    }

    sol.regularization = total_reg;
    return sol;
}

} // namespace robox::mpc
