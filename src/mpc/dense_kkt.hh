/**
 * @file
 * Dense KKT factorization — the unstructured alternative to the
 * stagewise Riccati recursion.
 *
 * Assembles the full Newton/KKT system of Eq. 6 (primal variables for
 * every stage plus one multiplier block per equality row) and solves it
 * with Gaussian elimination. This is the ablation partner of
 * mpc/riccati.hh (DESIGN.md decision #1): it produces the same step but
 * costs O((N(nx+nu))^3) instead of O(N(nx+nu)^3), which is why the
 * paper's solver (like HPMPC) exploits the block-tridiagonal sparsity.
 * Selectable at runtime via MpcOptions::kktSolver; also used as an
 * independent oracle by the solver tests.
 */

#ifndef ROBOX_MPC_DENSE_KKT_HH
#define ROBOX_MPC_DENSE_KKT_HH

#include "mpc/riccati.hh"

namespace robox::mpc
{

/**
 * Solve the same equality-constrained QP as solveRiccati() by
 * assembling and factoring the full KKT matrix.
 */
RiccatiSolution solveDenseKkt(const std::vector<StageQp> &stages,
                              const Matrix &qn, const Vector &qnv,
                              const Vector &dx0);

/** Pre-sized assembly buffers for the dense backend. */
struct DenseKktWorkspace
{
    Matrix kkt;
    Vector rhs;
};

/**
 * Workspace overload: assembles into ws and writes the steps into
 * sol's pre-sized buffers, so repeated dense solves reuse one KKT
 * allocation.
 *
 * Never throws on numeric input: a singular or NaN/Inf system is
 * reported through the returned status (sol is unspecified and must be
 * discarded). diagonal_shift adds a Tikhonov term to the primal
 * Hessian diagonal — the dense backend's analogue of the Riccati
 * recursion's Levenberg shift, used by the IPM's recovery ladder.
 */
FactorStatus solveDenseKkt(const std::vector<StageQp> &stages,
                           const Matrix &qn, const Vector &qnv,
                           const Vector &dx0, DenseKktWorkspace &ws,
                           RiccatiSolution &sol,
                           double diagonal_shift = 0.0);

} // namespace robox::mpc

#endif // ROBOX_MPC_DENSE_KKT_HH
