/**
 * @file
 * Sensor-input plausibility gate for the control layer.
 *
 * A poisoned measurement — NaN from a dropped packet, a wild value
 * from a glitched encoder, a frozen ADC repeating its last word — is
 * cheaper to reject *before* the solve than to let the interior-point
 * method spend its budget diverging on it. The gate runs four checks
 * against each measured state, in order of increasing statefulness:
 *
 *  1. finiteness  — any NaN/Inf component (always on);
 *  2. range       — components outside the model's state box bounds by
 *                   more than MpcOptions::sensorRangeMargin x span;
 *  3. jump        — inter-period inf-norm change above
 *                   MpcOptions::sensorJumpThreshold;
 *  4. frozen      — MpcOptions::sensorFrozenPeriods consecutive
 *                   bitwise-identical measurements.
 *
 * On a bad verdict the caller demotes the robot to its BackupPlan tail
 * for the period (core::Controller::step reports BadInput;
 * BatchController reports ServedFromBackup and never dispatches the
 * solve). The gate is deliberately deterministic — pure arithmetic on
 * the measurement and the last accepted one — so gated chaos campaigns
 * replay bitwise.
 *
 * One instance per robot; not thread-safe.
 */

#ifndef ROBOX_MPC_SENSOR_GATE_HH
#define ROBOX_MPC_SENSOR_GATE_HH

#include <cstdint>

#include "dsl/model_spec.hh"
#include "linalg/matrix.hh"
#include "mpc/options.hh"
#include "support/checkpoint.hh"

namespace robox::mpc
{

/** Outcome of one gate check, ordered by check sequence. */
enum class SensorVerdict
{
    Ok,         //!< Plausible; the solve may proceed.
    NonFinite,  //!< NaN/Inf component.
    OutOfRange, //!< Outside the state box bounds plus margin.
    Jump,       //!< Implausibly large inter-period change.
    Frozen,     //!< Sensor repeating the same word for too long.
};

/** Human-readable verdict name (stable, greppable). */
const char *toString(SensorVerdict verdict);

/** Stateful per-robot plausibility gate; see the file comment. */
class SensorGate
{
  public:
    SensorGate(const dsl::ModelSpec &model, const MpcOptions &options);

    /**
     * Check one measured state. Ok (and Frozen, whose value is
     * individually plausible) updates the jump baseline; NonFinite,
     * OutOfRange, and Jump leave it at the last accepted measurement
     * so a transient spike is rejected without shifting the baseline.
     * A jump that persists for kJumpRehomePeriods consecutive checks
     * re-homes the baseline to the current measurement (the robot
     * really is somewhere new — e.g. it was teleported or re-localized
     * — and refusing forever would starve it).
     */
    SensorVerdict check(const Vector &x);

    /** Forget the baseline and streaks (e.g. after Controller::reset). */
    void reset();

    /** Verdict of the most recent check(). */
    SensorVerdict lastVerdict() const { return last_verdict_; }

    /** Lifetime count of non-Ok verdicts. */
    std::uint64_t rejected() const { return rejected_; }

    /** Consecutive Jump verdicts before the baseline re-homes. */
    static constexpr int kJumpRehomePeriods = 3;

    /** Serialize the baseline and every streak counter, so a restored
     *  gate continues frozen/jump streaks exactly where they stood —
     *  neither resetting them nor double-counting. */
    void checkpoint(support::CheckpointWriter &w) const;

    /** Restore state written by checkpoint(); false on a short
     *  payload (the gate is reset() in that case). */
    bool restore(support::CheckpointReader &r);

  private:
    const dsl::ModelSpec *model_;
    double range_margin_;
    double jump_threshold_;
    int frozen_periods_;

    Vector baseline_;        //!< Last accepted measurement.
    bool has_baseline_ = false;
    int frozen_streak_ = 0;  //!< Consecutive identical measurements.
    int jump_streak_ = 0;    //!< Consecutive Jump verdicts.
    SensorVerdict last_verdict_ = SensorVerdict::Ok;
    std::uint64_t rejected_ = 0;
};

} // namespace robox::mpc

#endif // ROBOX_MPC_SENSOR_GATE_HH
