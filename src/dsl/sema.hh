/**
 * @file
 * Semantic analysis for the RoboX DSL.
 *
 * Binds a parsed program's instantiation and task call, evaluates all
 * imperative expressions in program order (Sec. IV), expands array
 * variables and group operations, and produces the concrete ModelSpec
 * consumed by the Program Translator. All semantic errors (undeclared
 * names, missing dynamics, out-of-range indices, misuse of symbolic vs.
 * imperative assignment) are reported via fatal().
 */

#ifndef ROBOX_DSL_SEMA_HH
#define ROBOX_DSL_SEMA_HH

#include <string>

#include "dsl/ast.hh"
#include "dsl/model_spec.hh"

namespace robox::dsl
{

/**
 * Analyze a parsed program, using its first instantiation and the first
 * task call on that instance. Pass a task name to select a specific
 * task call instead (a System may define several tasks; the paper's
 * programs call them like methods).
 */
ModelSpec analyze(const ProgramAst &program,
                  const std::string &task_name = "");

/** Convenience: parse then analyze. */
ModelSpec analyzeSource(const std::string &source,
                        const std::string &task_name = "");

} // namespace robox::dsl

#endif // ROBOX_DSL_SEMA_HH
