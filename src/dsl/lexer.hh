/**
 * @file
 * Lexer for the RoboX DSL.
 *
 * Converts program text into a token stream. Supports C++-style line
 * comments, decimal and scientific number literals, and the keyword set
 * of Table I. Lexical errors (stray characters, malformed numbers) are
 * collected as Diagnostic records by tokenizeChecked(); the classic
 * tokenize() entry point reports the first one through fatal().
 */

#ifndef ROBOX_DSL_LEXER_HH
#define ROBOX_DSL_LEXER_HH

#include <string>
#include <vector>

#include "dsl/diagnostic.hh"
#include "dsl/token.hh"

namespace robox::dsl
{

/** Tokenize an entire RoboX program; the result ends with EndOfFile. */
std::vector<Token> tokenize(const std::string &source);

/**
 * Tokenize, collecting every lexical error instead of throwing: a bad
 * character is recorded and skipped so lexing continues. `tokens`
 * always receives a complete EndOfFile-terminated stream (minus the
 * offending characters). Returns true when no diagnostics were added.
 */
bool tokenizeChecked(const std::string &source,
                     std::vector<Token> *tokens,
                     std::vector<Diagnostic> *diagnostics);

} // namespace robox::dsl

#endif // ROBOX_DSL_LEXER_HH
