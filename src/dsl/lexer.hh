/**
 * @file
 * Lexer for the RoboX DSL.
 *
 * Converts program text into a token stream. Supports C++-style line
 * comments, decimal and scientific number literals, and the keyword set
 * of Table I. Lexical errors (stray characters, malformed numbers) are
 * reported through fatal() with source locations.
 */

#ifndef ROBOX_DSL_LEXER_HH
#define ROBOX_DSL_LEXER_HH

#include <string>
#include <vector>

#include "dsl/token.hh"

namespace robox::dsl
{

/** Tokenize an entire RoboX program; the result ends with EndOfFile. */
std::vector<Token> tokenize(const std::string &source);

} // namespace robox::dsl

#endif // ROBOX_DSL_LEXER_HH
