/**
 * @file
 * Implementation of the canonical formatter.
 */

#include "dsl/format.hh"

#include <sstream>

#include "dsl/parser.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace robox::dsl
{

namespace
{

/** Binding strength for parenthesization decisions. */
int
precedenceOf(const ExprAst &e)
{
    switch (e.kind) {
      case ExprAstKind::Binary:
        switch (e.op) {
          case '+':
          case '-':
            return 1;
          case '*':
          case '/':
            return 2;
          case '^':
            return 3;
          default:
            panic("bad binary op in formatter");
        }
      case ExprAstKind::Unary:
        return 2; // Like a multiplication by -1.
      default:
        return 4; // Atoms never need parentheses.
    }
}

void
writeExpr(const ExprAst &e, std::ostringstream &os)
{
    switch (e.kind) {
      case ExprAstKind::Number:
        os << formatDouble(e.number);
        return;
      case ExprAstKind::VarRef:
        os << e.name;
        for (const ExprAstPtr &idx : e.indices) {
            os << "[";
            writeExpr(*idx, os);
            os << "]";
        }
        return;
      case ExprAstKind::Unary: {
        os << "-";
        bool paren = precedenceOf(*e.lhs) < precedenceOf(e);
        if (paren)
            os << "(";
        writeExpr(*e.lhs, os);
        if (paren)
            os << ")";
        return;
      }
      case ExprAstKind::Binary: {
        int prec = precedenceOf(e);
        bool lparen = precedenceOf(*e.lhs) < prec;
        // Subtraction/division are left associative: a right child at
        // equal precedence needs parentheses (a - (b - c)).
        bool rparen = precedenceOf(*e.rhs) < prec ||
                      (precedenceOf(*e.rhs) == prec &&
                       (e.op == '-' || e.op == '/'));
        if (lparen)
            os << "(";
        writeExpr(*e.lhs, os);
        if (lparen)
            os << ")";
        os << " " << e.op << " ";
        if (rparen)
            os << "(";
        writeExpr(*e.rhs, os);
        if (rparen)
            os << ")";
        return;
      }
      case ExprAstKind::Call:
        os << e.name << "(";
        writeExpr(*e.args[0], os);
        os << ")";
        return;
      case ExprAstKind::GroupOp:
        os << e.name;
        for (const std::string &var : e.groupVars)
            os << "[" << var << "]";
        os << "(";
        writeExpr(*e.args[0], os);
        os << ")";
        return;
    }
}

void
writeDecl(const DeclStmtAst &decl, int indent, std::ostringstream &os)
{
    os << std::string(static_cast<std::size_t>(indent), ' ')
       << declKindName(decl.kind) << " ";
    bool first = true;
    for (const DeclaratorAst &d : decl.decls) {
        if (!first)
            os << ", ";
        first = false;
        os << d.name;
        if (decl.kind == DeclKind::Range) {
            os << "[";
            writeExpr(*d.rangeLo, os);
            os << ":";
            writeExpr(*d.rangeHi, os);
            os << "]";
        } else {
            for (const ExprAstPtr &dim : d.dims) {
                os << "[";
                writeExpr(*dim, os);
                os << "]";
            }
        }
    }
    os << ";\n";
}

void
writeAssign(const AssignStmtAst &assign, int indent,
            std::ostringstream &os)
{
    os << std::string(static_cast<std::size_t>(indent), ' ')
       << assign.lhs.name;
    for (const ExprAstPtr &idx : assign.lhs.indices) {
        os << "[";
        writeExpr(*idx, os);
        os << "]";
    }
    if (!assign.lhs.field.empty())
        os << "." << assign.lhs.field;
    os << (assign.imperative ? " <= " : " = ");
    writeExpr(*assign.rhs, os);
    os << ";\n";
}

void
writeBody(const std::vector<StmtAst> &body, int indent,
          std::ostringstream &os)
{
    for (const StmtAst &stmt : body) {
        if (stmt.decl)
            writeDecl(*stmt.decl, indent, os);
        else
            writeAssign(*stmt.assign, indent, os);
    }
}

void
writeFormals(const std::vector<FormalParamAst> &params,
             std::ostringstream &os)
{
    os << "(";
    bool first = true;
    for (const FormalParamAst &p : params) {
        if (!first)
            os << ", ";
        first = false;
        os << (p.kind == DeclKind::Reference ? "reference " : "param ")
           << p.name;
    }
    os << ")";
}

void
writeArgs(const std::vector<ExprAstPtr> &args, std::ostringstream &os)
{
    os << "(";
    bool first = true;
    for (const ExprAstPtr &a : args) {
        if (!first)
            os << ", ";
        first = false;
        writeExpr(*a, os);
    }
    os << ")";
}

} // namespace

std::string
formatExpr(const ExprAst &expr)
{
    std::ostringstream os;
    writeExpr(expr, os);
    return os.str();
}

std::string
formatProgram(const ProgramAst &program)
{
    std::ostringstream os;
    for (const SystemDefAst &sys : program.systems) {
        os << "System " << sys.name;
        writeFormals(sys.params, os);
        os << " {\n";
        writeBody(sys.body, 2, os);
        for (const TaskDefAst &task : sys.tasks) {
            os << "\n  Task " << task.name;
            writeFormals(task.params, os);
            os << " {\n";
            writeBody(task.body, 4, os);
            os << "  }\n";
        }
        os << "}\n\n";
    }
    for (const GlobalRefAst &ref : program.references) {
        os << "reference " << ref.name;
        for (const ExprAstPtr &dim : ref.dims) {
            os << "[";
            writeExpr(*dim, os);
            os << "]";
        }
        os << ";\n";
    }
    for (const InstantiationAst &inst : program.instances) {
        os << inst.systemName << " " << inst.instanceName;
        writeArgs(inst.args, os);
        os << ";\n";
    }
    for (const TaskCallAst &call : program.taskCalls) {
        os << call.instanceName << "." << call.taskName;
        writeArgs(call.args, os);
        os << ";\n";
    }
    return os.str();
}

std::string
formatSource(const std::string &source)
{
    return formatProgram(parseProgram(source));
}

} // namespace robox::dsl
