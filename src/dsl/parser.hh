/**
 * @file
 * Recursive-descent parser for the RoboX DSL.
 *
 * Produces a ProgramAst from source text. All syntax errors are reported
 * via fatal() with line:column locations and the expected token.
 */

#ifndef ROBOX_DSL_PARSER_HH
#define ROBOX_DSL_PARSER_HH

#include <string>

#include "dsl/ast.hh"

namespace robox::dsl
{

/** Parse a complete RoboX program. */
ProgramAst parseProgram(const std::string &source);

} // namespace robox::dsl

#endif // ROBOX_DSL_PARSER_HH
