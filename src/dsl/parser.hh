/**
 * @file
 * Recursive-descent parser for the RoboX DSL.
 *
 * Produces a ProgramAst from source text. parseChecked() collects
 * syntax errors as Diagnostic records with line:column locations and
 * the expected token; the classic parseProgram() entry point reports
 * the first one via fatal(). Semantic checks (sema.cc) still fatal()
 * directly; converting those is tracked as follow-up work.
 */

#ifndef ROBOX_DSL_PARSER_HH
#define ROBOX_DSL_PARSER_HH

#include <string>
#include <vector>

#include "dsl/ast.hh"
#include "dsl/diagnostic.hh"

namespace robox::dsl
{

/** Parse a complete RoboX program. */
ProgramAst parseProgram(const std::string &source);

/** Outcome of parseChecked(): the AST is meaningful only when ok(). */
struct ParseResult
{
    ProgramAst program;
    std::vector<Diagnostic> diagnostics;

    bool ok() const { return diagnostics.empty(); }
};

/**
 * Parse without throwing on malformed input. Every lexical error is
 * collected (the lexer skips bad characters and keeps going); if any
 * were found the parse is not attempted, since a recovered token
 * stream would only produce cascading noise. Otherwise the first
 * syntax error, if any, is collected and the partial AST discarded.
 */
ParseResult parseChecked(const std::string &source);

} // namespace robox::dsl

#endif // ROBOX_DSL_PARSER_HH
