/**
 * @file
 * Source diagnostics for the RoboX DSL frontend.
 *
 * The checked lexer/parser entry points (tokenizeChecked,
 * parseChecked) report problems by collecting Diagnostic records
 * instead of throwing, so embedding tools (editors, batch validators,
 * the upgrade pipeline vetting candidate programs) can surface every
 * lexical error in one pass and keep running. The classic tokenize()/
 * parseProgram() entry points remain fatal()-on-first-error wrappers
 * around the same machinery.
 */

#ifndef ROBOX_DSL_DIAGNOSTIC_HH
#define ROBOX_DSL_DIAGNOSTIC_HH

#include <string>
#include <vector>

namespace robox::dsl
{

/** One frontend error with its source location. */
struct Diagnostic
{
    int line = 0;
    /** 1-based column; 0 when only the line is known. */
    int column = 0;
    /** Fully formatted message, e.g. "parse error at 3:5: ...". */
    std::string message;
};

} // namespace robox::dsl

#endif // ROBOX_DSL_DIAGNOSTIC_HH
