/**
 * @file
 * ModelSpec queries and the human-readable model summary.
 */

#include "dsl/model_spec.hh"

#include <sstream>

#include "support/strings.hh"

namespace robox::dsl
{

int
ModelSpec::numBoundConstraints() const
{
    int count = 0;
    for (double b : stateLower)
        count += b != -kUnbounded;
    for (double b : stateUpper)
        count += b != kUnbounded;
    for (double b : inputLower)
        count += b != -kUnbounded;
    for (double b : inputUpper)
        count += b != kUnbounded;
    return count;
}

int
ModelSpec::numRunningPenalties() const
{
    int count = 0;
    for (const PenaltyTerm &p : penalties)
        count += !p.terminal;
    return count;
}

int
ModelSpec::numTerminalPenalties() const
{
    int count = 0;
    for (const PenaltyTerm &p : penalties)
        count += p.terminal;
    return count;
}

namespace
{

/** Render a bound pair like "[-1, 1]", eliding infinities. */
std::string
boundsText(double lo, double hi)
{
    std::string out = "[";
    out += lo == -kUnbounded ? "-inf" : formatDouble(lo);
    out += ", ";
    out += hi == kUnbounded ? "inf" : formatDouble(hi);
    out += "]";
    return out;
}

} // namespace

std::string
ModelSpec::describe() const
{
    std::ostringstream os;
    os << "System " << systemName << " / Task " << taskName << "\n";
    os << "  states (" << nx() << "):\n";
    for (int i = 0; i < nx(); ++i) {
        os << "    " << stateNames[i] << " in "
           << boundsText(stateLower[i], stateUpper[i])
           << ", d/dt = " << dynamics[i].str() << "\n";
    }
    os << "  inputs (" << nu() << "):\n";
    for (int i = 0; i < nu(); ++i) {
        os << "    " << inputNames[i] << " in "
           << boundsText(inputLower[i], inputUpper[i]) << "\n";
    }
    if (nref() > 0) {
        os << "  references (" << nref() << "):";
        for (const std::string &name : referenceNames)
            os << " " << name;
        os << "\n";
    }
    os << "  penalties (" << penalties.size() << "):\n";
    for (const PenaltyTerm &p : penalties) {
        os << "    " << p.name << " ["
           << (p.terminal ? "terminal" : "running")
           << ", w=" << formatDouble(p.weight)
           << "] = " << p.expr.str() << "\n";
    }
    os << "  constraints (" << constraints.size() << "):\n";
    for (const ConstraintTerm &c : constraints) {
        os << "    " << c.name << " ["
           << (c.terminal ? "terminal" : "running") << "] ";
        if (c.isEquality) {
            os << c.expr.str() << " == " << formatDouble(c.equalsValue);
        } else {
            os << c.expr.str() << " in "
               << boundsText(c.lower, c.upper);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace robox::dsl
