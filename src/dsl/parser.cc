/**
 * @file
 * Implementation of the RoboX DSL recursive-descent parser.
 */

#include "dsl/parser.hh"

#include <cmath>
#include <unordered_set>

#include "dsl/lexer.hh"
#include "support/logging.hh"

namespace robox::dsl
{

const char *
declKindName(DeclKind kind)
{
    switch (kind) {
      case DeclKind::Input: return "input";
      case DeclKind::State: return "state";
      case DeclKind::Param: return "param";
      case DeclKind::Penalty: return "penalty";
      case DeclKind::Constraint: return "constraint";
      case DeclKind::Reference: return "reference";
      case DeclKind::Range: return "range";
    }
    return "?";
}

namespace
{

const std::unordered_set<std::string> kNonlinearFns = {
    "sin", "cos", "tan", "asin", "acos", "atan", "exp", "sqrt",
};

const std::unordered_set<std::string> kGroupFns = {
    "sum", "norm", "min", "max",
};

const std::unordered_set<std::string> kFields = {
    "dt", "lower_bound", "upper_bound", "equals", "weight",
    "running", "terminal",
};

/** Thrown on the first syntax error; caught by parseChecked(), which
 *  converts it into a collected Diagnostic. */
struct ParseError
{
    Diagnostic diagnostic;
};

/** Token-stream cursor with error helpers. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens)) {}

    ProgramAst parseProgram();

  private:
    const Token &peek(int ahead = 0) const
    {
        std::size_t i = pos_ + static_cast<std::size_t>(ahead);
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token &advance() { return tokens_[pos_++]; }

    bool check(TokenKind kind) const { return peek().kind == kind; }

    bool
    match(TokenKind kind)
    {
        if (!check(kind))
            return false;
        advance();
        return true;
    }

    [[noreturn]] void
    raise(int line, int column, std::string message)
    {
        ParseError err;
        err.diagnostic.line = line;
        err.diagnostic.column = column;
        err.diagnostic.message = std::move(message);
        throw err;
    }

    const Token &
    expect(TokenKind kind, const char *context)
    {
        if (!check(kind)) {
            raise(peek().line, peek().column,
                  detail::format(
                      "parse error at {}: expected {} {} but found "
                      "{} '{}'",
                      peek().location(), tokenKindName(kind), context,
                      tokenKindName(peek().kind), peek().text));
        }
        return advance();
    }

    [[noreturn]] void
    errorHere(const std::string &what)
    {
        raise(peek().line, peek().column,
              detail::format("parse error at {}: {} (found {} '{}')",
                             peek().location(), what,
                             tokenKindName(peek().kind), peek().text));
    }

    /** True when the current token starts a declaration. */
    bool
    atDeclKeyword() const
    {
        switch (peek().kind) {
          case TokenKind::KwInput:
          case TokenKind::KwState:
          case TokenKind::KwParam:
          case TokenKind::KwPenalty:
          case TokenKind::KwConstraint:
          case TokenKind::KwReference:
          case TokenKind::KwRange:
            return true;
          default:
            return false;
        }
    }

    DeclKind
    declKindFromToken(const Token &t) const
    {
        switch (t.kind) {
          case TokenKind::KwInput: return DeclKind::Input;
          case TokenKind::KwState: return DeclKind::State;
          case TokenKind::KwParam: return DeclKind::Param;
          case TokenKind::KwPenalty: return DeclKind::Penalty;
          case TokenKind::KwConstraint: return DeclKind::Constraint;
          case TokenKind::KwReference: return DeclKind::Reference;
          case TokenKind::KwRange: return DeclKind::Range;
          default:
            panic("declKindFromToken on {}", tokenKindName(t.kind));
        }
    }

    SystemDefAst parseSystemDef();
    TaskDefAst parseTaskDef();
    std::vector<FormalParamAst> parseFormalParams();
    DeclStmtAst parseDeclStmt();
    AssignStmtAst parseAssignStmt();
    LValueAst parseLValue();
    ExprAstPtr parseExpr();
    ExprAstPtr parseAddExpr();
    ExprAstPtr parseMulExpr();
    ExprAstPtr parsePowExpr();
    ExprAstPtr parseUnary();
    ExprAstPtr parsePrimary();

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

ExprAstPtr
makeNode(ExprAstKind kind, const Token &at)
{
    auto node = std::make_unique<ExprAst>();
    node->kind = kind;
    node->line = at.line;
    node->column = at.column;
    return node;
}

std::vector<FormalParamAst>
Parser::parseFormalParams()
{
    std::vector<FormalParamAst> params;
    if (check(TokenKind::RParen))
        return params;
    do {
        FormalParamAst p;
        p.line = peek().line;
        if (match(TokenKind::KwParam)) {
            p.kind = DeclKind::Param;
        } else if (match(TokenKind::KwReference)) {
            p.kind = DeclKind::Reference;
        } else {
            errorHere("expected 'param' or 'reference' in parameter list");
        }
        p.name = expect(TokenKind::Identifier, "as parameter name").text;
        params.push_back(std::move(p));
    } while (match(TokenKind::Comma));
    return params;
}

DeclStmtAst
Parser::parseDeclStmt()
{
    DeclStmtAst stmt;
    const Token &kw = advance();
    stmt.kind = declKindFromToken(kw);
    stmt.line = kw.line;
    do {
        DeclaratorAst d;
        d.name = expect(TokenKind::Identifier, "as declared name").text;
        while (match(TokenKind::LBracket)) {
            ExprAstPtr first = parseExpr();
            if (match(TokenKind::Colon)) {
                if (stmt.kind != DeclKind::Range) {
                    raise(kw.line, 0,
                          detail::format(
                              "parse error at {}: '[lo:hi]' bounds are "
                              "only valid on range declarations",
                              kw.line));
                }
                d.rangeLo = std::move(first);
                d.rangeHi = parseExpr();
            } else {
                d.dims.push_back(std::move(first));
            }
            expect(TokenKind::RBracket, "after dimension");
        }
        if (stmt.kind == DeclKind::Range && !d.rangeHi) {
            raise(stmt.line, 0,
                  detail::format(
                      "parse error at line {}: range '{}' needs "
                      "'[lo:hi]' bounds",
                      stmt.line, d.name));
        }
        stmt.decls.push_back(std::move(d));
    } while (match(TokenKind::Comma));
    expect(TokenKind::Semicolon, "after declaration");
    return stmt;
}

LValueAst
Parser::parseLValue()
{
    LValueAst lv;
    const Token &name = expect(TokenKind::Identifier, "as assignment target");
    lv.name = name.text;
    lv.line = name.line;
    lv.column = name.column;
    while (match(TokenKind::LBracket)) {
        lv.indices.push_back(parseExpr());
        expect(TokenKind::RBracket, "after index");
    }
    if (match(TokenKind::Dot)) {
        const Token &field =
            expect(TokenKind::Identifier, "as field name after '.'");
        if (!kFields.count(field.text)) {
            raise(field.line, field.column,
                  detail::format(
                      "parse error at {}: unknown field '{}'; valid "
                      "fields are dt, lower_bound, upper_bound, "
                      "equals, weight, running, terminal",
                      field.location(), field.text));
        }
        lv.field = field.text;
    }
    return lv;
}

AssignStmtAst
Parser::parseAssignStmt()
{
    AssignStmtAst stmt;
    stmt.lhs = parseLValue();
    stmt.line = stmt.lhs.line;
    if (match(TokenKind::Assign)) {
        stmt.imperative = false;
    } else if (match(TokenKind::ImpAssign)) {
        stmt.imperative = true;
    } else {
        errorHere("expected '=' or '<=' in assignment");
    }
    stmt.rhs = parseExpr();
    expect(TokenKind::Semicolon, "after assignment");
    return stmt;
}

ExprAstPtr
Parser::parseExpr()
{
    return parseAddExpr();
}

ExprAstPtr
Parser::parseAddExpr()
{
    ExprAstPtr lhs = parseMulExpr();
    while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
        const Token &op = advance();
        ExprAstPtr node = makeNode(ExprAstKind::Binary, op);
        node->op = op.kind == TokenKind::Plus ? '+' : '-';
        node->lhs = std::move(lhs);
        node->rhs = parseMulExpr();
        lhs = std::move(node);
    }
    return lhs;
}

ExprAstPtr
Parser::parseMulExpr()
{
    ExprAstPtr lhs = parsePowExpr();
    while (check(TokenKind::Star) || check(TokenKind::Slash)) {
        const Token &op = advance();
        ExprAstPtr node = makeNode(ExprAstKind::Binary, op);
        node->op = op.kind == TokenKind::Star ? '*' : '/';
        node->lhs = std::move(lhs);
        node->rhs = parsePowExpr();
        lhs = std::move(node);
    }
    return lhs;
}

ExprAstPtr
Parser::parsePowExpr()
{
    ExprAstPtr base = parseUnary();
    if (check(TokenKind::Caret)) {
        const Token &op = advance();
        const Token &expo = expect(TokenKind::Number, "as exponent of '^'");
        double intpart = 0.0;
        if (std::modf(expo.number, &intpart) != 0.0) {
            raise(expo.line, expo.column,
                  detail::format(
                      "parse error at {}: '^' requires an integer "
                      "exponent, got {}",
                      expo.location(), expo.text));
        }
        ExprAstPtr node = makeNode(ExprAstKind::Binary, op);
        node->op = '^';
        node->lhs = std::move(base);
        node->rhs = makeNode(ExprAstKind::Number, expo);
        node->rhs->number = expo.number;
        return node;
    }
    return base;
}

ExprAstPtr
Parser::parseUnary()
{
    if (check(TokenKind::Minus)) {
        const Token &op = advance();
        ExprAstPtr node = makeNode(ExprAstKind::Unary, op);
        node->op = '-';
        node->lhs = parseUnary();
        return node;
    }
    return parsePrimary();
}

ExprAstPtr
Parser::parsePrimary()
{
    if (check(TokenKind::Number)) {
        const Token &num = advance();
        ExprAstPtr node = makeNode(ExprAstKind::Number, num);
        node->number = num.number;
        return node;
    }
    if (match(TokenKind::LParen)) {
        ExprAstPtr inner = parseExpr();
        expect(TokenKind::RParen, "to close parenthesized expression");
        return inner;
    }
    if (!check(TokenKind::Identifier))
        errorHere("expected an expression");

    const Token &name = advance();

    // Group operation: sum[i](expr), norm[i][j](expr), ...
    if (kGroupFns.count(name.text) && check(TokenKind::LBracket)) {
        ExprAstPtr node = makeNode(ExprAstKind::GroupOp, name);
        node->name = name.text;
        while (match(TokenKind::LBracket)) {
            node->groupVars.push_back(
                expect(TokenKind::Identifier, "as group range variable")
                    .text);
            expect(TokenKind::RBracket, "after group range variable");
        }
        expect(TokenKind::LParen, "to open group operation body");
        node->args.push_back(parseExpr());
        expect(TokenKind::RParen, "to close group operation body");
        return node;
    }

    // Nonlinear function call: sin(expr) ...
    if (kNonlinearFns.count(name.text) && check(TokenKind::LParen)) {
        advance(); // '('
        ExprAstPtr node = makeNode(ExprAstKind::Call, name);
        node->name = name.text;
        node->args.push_back(parseExpr());
        expect(TokenKind::RParen, "to close function call");
        return node;
    }

    // Plain variable reference with optional indices.
    ExprAstPtr node = makeNode(ExprAstKind::VarRef, name);
    node->name = name.text;
    while (match(TokenKind::LBracket)) {
        node->indices.push_back(parseExpr());
        expect(TokenKind::RBracket, "after index expression");
    }
    return node;
}

TaskDefAst
Parser::parseTaskDef()
{
    TaskDefAst task;
    const Token &kw = expect(TokenKind::KwTask, "to begin task definition");
    task.line = kw.line;
    task.name = expect(TokenKind::Identifier, "as task name").text;
    expect(TokenKind::LParen, "to open task parameter list");
    task.params = parseFormalParams();
    expect(TokenKind::RParen, "to close task parameter list");
    expect(TokenKind::LBrace, "to open task body");
    while (!check(TokenKind::RBrace)) {
        StmtAst stmt;
        if (atDeclKeyword()) {
            stmt.decl = std::make_unique<DeclStmtAst>(parseDeclStmt());
        } else if (check(TokenKind::Identifier)) {
            stmt.assign =
                std::make_unique<AssignStmtAst>(parseAssignStmt());
        } else {
            errorHere("expected a declaration or assignment in task body");
        }
        task.body.push_back(std::move(stmt));
    }
    expect(TokenKind::RBrace, "to close task body");
    return task;
}

SystemDefAst
Parser::parseSystemDef()
{
    SystemDefAst sys;
    const Token &kw =
        expect(TokenKind::KwSystem, "to begin system definition");
    sys.line = kw.line;
    sys.name = expect(TokenKind::Identifier, "as system name").text;
    expect(TokenKind::LParen, "to open system parameter list");
    sys.params = parseFormalParams();
    expect(TokenKind::RParen, "to close system parameter list");
    expect(TokenKind::LBrace, "to open system body");
    while (!check(TokenKind::RBrace)) {
        if (check(TokenKind::KwTask)) {
            sys.tasks.push_back(parseTaskDef());
            continue;
        }
        StmtAst stmt;
        if (atDeclKeyword()) {
            stmt.decl = std::make_unique<DeclStmtAst>(parseDeclStmt());
        } else if (check(TokenKind::Identifier)) {
            stmt.assign =
                std::make_unique<AssignStmtAst>(parseAssignStmt());
        } else {
            errorHere("expected a declaration, assignment, or Task in "
                      "system body");
        }
        sys.body.push_back(std::move(stmt));
    }
    expect(TokenKind::RBrace, "to close system body");
    return sys;
}

ProgramAst
Parser::parseProgram()
{
    ProgramAst program;
    while (!check(TokenKind::EndOfFile)) {
        if (check(TokenKind::KwSystem)) {
            program.systems.push_back(parseSystemDef());
            continue;
        }
        if (check(TokenKind::KwReference)) {
            // Global reference declaration(s).
            DeclStmtAst decl = parseDeclStmt();
            for (DeclaratorAst &d : decl.decls) {
                GlobalRefAst ref;
                ref.name = d.name;
                ref.dims = std::move(d.dims);
                ref.line = decl.line;
                program.references.push_back(std::move(ref));
            }
            continue;
        }
        if (check(TokenKind::Identifier)) {
            const Token &first = advance();
            if (check(TokenKind::Identifier)) {
                // Instantiation: SystemName instanceName(args);
                InstantiationAst inst;
                inst.systemName = first.text;
                inst.line = first.line;
                inst.instanceName = advance().text;
                expect(TokenKind::LParen, "to open instantiation arguments");
                if (!check(TokenKind::RParen)) {
                    do {
                        inst.args.push_back(parseExpr());
                    } while (match(TokenKind::Comma));
                }
                expect(TokenKind::RParen,
                       "to close instantiation arguments");
                expect(TokenKind::Semicolon, "after instantiation");
                program.instances.push_back(std::move(inst));
                continue;
            }
            if (check(TokenKind::Dot)) {
                // Task call: instance.task(args);
                advance(); // '.'
                TaskCallAst call;
                call.instanceName = first.text;
                call.line = first.line;
                call.taskName =
                    expect(TokenKind::Identifier, "as task name").text;
                expect(TokenKind::LParen, "to open task call arguments");
                if (!check(TokenKind::RParen)) {
                    do {
                        call.args.push_back(parseExpr());
                    } while (match(TokenKind::Comma));
                }
                expect(TokenKind::RParen, "to close task call arguments");
                expect(TokenKind::Semicolon, "after task call");
                program.taskCalls.push_back(std::move(call));
                continue;
            }
            errorHere("expected an instantiation or task call at top level");
        }
        errorHere("expected 'System', 'reference', an instantiation, or a "
                  "task call at top level");
    }
    return program;
}

} // namespace

ParseResult
parseChecked(const std::string &source)
{
    ParseResult result;
    std::vector<Token> tokens;
    if (!tokenizeChecked(source, &tokens, &result.diagnostics))
        return result;
    Parser parser(std::move(tokens));
    try {
        result.program = parser.parseProgram();
    } catch (ParseError &err) {
        result.program = ProgramAst();
        result.diagnostics.push_back(std::move(err.diagnostic));
    }
    return result;
}

ProgramAst
parseProgram(const std::string &source)
{
    ParseResult result = parseChecked(source);
    if (!result.ok())
        fatal("{}", result.diagnostics.front().message);
    return std::move(result.program);
}

} // namespace robox::dsl
