/**
 * @file
 * Implementation of the RoboX DSL lexer.
 */

#include "dsl/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/logging.hh"

namespace robox::dsl
{

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Number: return "number";
      case TokenKind::KwSystem: return "'System'";
      case TokenKind::KwTask: return "'Task'";
      case TokenKind::KwInput: return "'input'";
      case TokenKind::KwState: return "'state'";
      case TokenKind::KwParam: return "'param'";
      case TokenKind::KwPenalty: return "'penalty'";
      case TokenKind::KwConstraint: return "'constraint'";
      case TokenKind::KwReference: return "'reference'";
      case TokenKind::KwRange: return "'range'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Comma: return "','";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Assign: return "'='";
      case TokenKind::ImpAssign: return "'<='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::EndOfFile: return "end of file";
    }
    return "?";
}

std::string
Token::location() const
{
    return std::to_string(line) + ":" + std::to_string(column);
}

namespace
{

const std::unordered_map<std::string, TokenKind> kKeywords = {
    {"System", TokenKind::KwSystem},
    {"Task", TokenKind::KwTask},
    {"input", TokenKind::KwInput},
    {"state", TokenKind::KwState},
    {"param", TokenKind::KwParam},
    {"penalty", TokenKind::KwPenalty},
    {"constraint", TokenKind::KwConstraint},
    {"reference", TokenKind::KwReference},
    {"range", TokenKind::KwRange},
};

} // namespace

bool
tokenizeChecked(const std::string &source, std::vector<Token> *out,
                std::vector<Diagnostic> *diagnostics)
{
    std::vector<Token> tokens;
    const std::size_t first_diag = diagnostics->size();
    int line = 1;
    int column = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    auto peek = [&](std::size_t ahead = 0) -> char {
        return i + ahead < n ? source[i + ahead] : '\0';
    };
    auto advance = [&]() {
        if (source[i] == '\n') {
            ++line;
            column = 1;
        } else {
            ++column;
        }
        ++i;
    };
    auto push = [&](TokenKind kind, std::string text, int tline,
                    int tcolumn) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = tline;
        t.column = tcolumn;
        tokens.push_back(std::move(t));
    };
    auto diagnose = [&](int dline, int dcolumn, std::string message) {
        Diagnostic d;
        d.line = dline;
        d.column = dcolumn;
        d.message = std::move(message);
        diagnostics->push_back(std::move(d));
    };

    while (i < n) {
        char c = peek();
        int tline = line;
        int tcolumn = column;

        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        // Line comments.
        if (c == '/' && peek(1) == '/') {
            while (i < n && peek() != '\n')
                advance();
            continue;
        }
        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(peek())) ||
                    peek() == '_')) {
                word.push_back(peek());
                advance();
            }
            auto it = kKeywords.find(word);
            push(it != kKeywords.end() ? it->second : TokenKind::Identifier,
                 word, tline, tcolumn);
            continue;
        }
        // Numbers: integer, decimal, scientific.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::string lit;
            bool seen_dot = false;
            bool seen_exp = false;
            while (i < n) {
                char d = peek();
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    lit.push_back(d);
                    advance();
                } else if (d == '.' && !seen_dot && !seen_exp) {
                    // A '.' followed by an identifier is field access on
                    // an integer-indexed name, not a decimal point.
                    if (!std::isdigit(static_cast<unsigned char>(peek(1))))
                        break;
                    seen_dot = true;
                    lit.push_back(d);
                    advance();
                } else if ((d == 'e' || d == 'E') && !seen_exp) {
                    char next = peek(1);
                    if (!std::isdigit(static_cast<unsigned char>(next)) &&
                        !((next == '+' || next == '-') &&
                          std::isdigit(static_cast<unsigned char>(
                              i + 2 < n ? source[i + 2] : '\0')))) {
                        break;
                    }
                    seen_exp = true;
                    lit.push_back(d);
                    advance();
                    if (peek() == '+' || peek() == '-') {
                        lit.push_back(peek());
                        advance();
                    }
                } else {
                    break;
                }
            }
            Token t;
            t.kind = TokenKind::Number;
            t.text = lit;
            t.number = std::strtod(lit.c_str(), nullptr);
            t.line = tline;
            t.column = tcolumn;
            tokens.push_back(std::move(t));
            continue;
        }
        // Operators and punctuation.
        TokenKind kind;
        std::string text(1, c);
        switch (c) {
          case '(': kind = TokenKind::LParen; break;
          case ')': kind = TokenKind::RParen; break;
          case '{': kind = TokenKind::LBrace; break;
          case '}': kind = TokenKind::RBrace; break;
          case '[': kind = TokenKind::LBracket; break;
          case ']': kind = TokenKind::RBracket; break;
          case ';': kind = TokenKind::Semicolon; break;
          case ',': kind = TokenKind::Comma; break;
          case '.': kind = TokenKind::Dot; break;
          case ':': kind = TokenKind::Colon; break;
          case '+': kind = TokenKind::Plus; break;
          case '-': kind = TokenKind::Minus; break;
          case '*': kind = TokenKind::Star; break;
          case '/': kind = TokenKind::Slash; break;
          case '^': kind = TokenKind::Caret; break;
          case '=': kind = TokenKind::Assign; break;
          case '<':
            if (peek(1) == '=') {
                kind = TokenKind::ImpAssign;
                text = "<=";
                advance();
            } else {
                diagnose(tline, tcolumn,
                         detail::format(
                             "lex error at {}:{}: stray '<' (did you "
                             "mean '<='?)",
                             tline, tcolumn));
                advance();
                continue;
            }
            break;
          default:
            diagnose(tline, tcolumn,
                     detail::format(
                         "lex error at {}:{}: unexpected character '{}'",
                         tline, tcolumn, std::string(1, c)));
            advance();
            continue;
        }
        advance();
        push(kind, text, tline, tcolumn);
    }

    push(TokenKind::EndOfFile, "", line, column);
    *out = std::move(tokens);
    return diagnostics->size() == first_diag;
}

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    std::vector<Diagnostic> diagnostics;
    if (!tokenizeChecked(source, &tokens, &diagnostics))
        fatal("{}", diagnostics.front().message);
    return tokens;
}

} // namespace robox::dsl
