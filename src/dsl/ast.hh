/**
 * @file
 * Abstract syntax tree for the RoboX DSL.
 *
 * The grammar mirrors the language of Sec. IV: a program is a set of
 * System components (each containing datatype declarations, symbolic and
 * imperative assignments, and nested Task components), global reference
 * declarations, a system instantiation, and a task call. Expressions
 * support elementary operators, nonlinear functions, and group
 * operations over range variables.
 */

#ifndef ROBOX_DSL_AST_HH
#define ROBOX_DSL_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace robox::dsl
{

/** Datatype keywords that introduce declarations (Table I). */
enum class DeclKind
{
    Input,
    State,
    Param,
    Penalty,
    Constraint,
    Reference,
    Range,
};

/** Printable name of a declaration kind. */
const char *declKindName(DeclKind kind);

struct ExprAst;
using ExprAstPtr = std::unique_ptr<ExprAst>;

/** Expression node kinds. */
enum class ExprAstKind
{
    Number,   //!< Numeric literal.
    VarRef,   //!< Name with optional index expressions.
    Unary,    //!< Unary minus.
    Binary,   //!< + - * / ^.
    Call,     //!< Nonlinear function call: sin(e), sqrt(e), ...
    GroupOp,  //!< sum[i](e), norm[i](e), min[i](e), max[i](e).
};

/** One expression tree node. */
struct ExprAst
{
    ExprAstKind kind = ExprAstKind::Number;
    int line = 0;
    int column = 0;

    double number = 0.0;             //!< Number payload.
    std::string name;                //!< VarRef base / Call fn / GroupOp fn.
    std::vector<ExprAstPtr> indices; //!< VarRef index expressions.
    char op = 0;                     //!< Unary/Binary operator character.
    ExprAstPtr lhs;                  //!< Binary left / Unary operand.
    ExprAstPtr rhs;                  //!< Binary right.
    std::vector<ExprAstPtr> args;    //!< Call / GroupOp arguments.
    std::vector<std::string> groupVars; //!< GroupOp range variable names.
};

/** Assignment target: name, optional indices, optional field. */
struct LValueAst
{
    std::string name;
    std::vector<ExprAstPtr> indices;
    std::string field; //!< "", "dt", "lower_bound", "upper_bound",
                       //!< "equals", "weight", "running", "terminal".
    int line = 0;
    int column = 0;
};

/** One declarator in a declaration statement: name plus dimensions. */
struct DeclaratorAst
{
    std::string name;
    std::vector<ExprAstPtr> dims; //!< Array dimensions (constant exprs).
    ExprAstPtr rangeLo;           //!< range lower bound (range decls).
    ExprAstPtr rangeHi;           //!< range upper bound (exclusive).
};

/** Declaration statement: `state pos[2], angle;`. */
struct DeclStmtAst
{
    DeclKind kind = DeclKind::State;
    std::vector<DeclaratorAst> decls;
    int line = 0;
};

/** Assignment statement, symbolic (=) or imperative (<=). */
struct AssignStmtAst
{
    LValueAst lhs;
    bool imperative = false;
    ExprAstPtr rhs;
    int line = 0;
};

/** A body statement is either a declaration or an assignment. */
struct StmtAst
{
    // Exactly one of decl/assign is populated.
    std::unique_ptr<DeclStmtAst> decl;
    std::unique_ptr<AssignStmtAst> assign;
};

/** Formal parameter of a System or Task: `param w` or `reference r`. */
struct FormalParamAst
{
    DeclKind kind = DeclKind::Param; //!< Param or Reference.
    std::string name;
    int line = 0;
};

/** Task component nested in a System. */
struct TaskDefAst
{
    std::string name;
    std::vector<FormalParamAst> params;
    std::vector<StmtAst> body;
    int line = 0;
};

/** System component. */
struct SystemDefAst
{
    std::string name;
    std::vector<FormalParamAst> params;
    std::vector<StmtAst> body;   //!< Declarations and assignments.
    std::vector<TaskDefAst> tasks;
    int line = 0;
};

/** Global reference declaration: `reference desired_x;`. */
struct GlobalRefAst
{
    std::string name;
    std::vector<ExprAstPtr> dims;
    int line = 0;
};

/** System instantiation: `MobileRobot robot(0.1, 0.01);`. */
struct InstantiationAst
{
    std::string systemName;
    std::string instanceName;
    std::vector<ExprAstPtr> args;
    int line = 0;
};

/** Task invocation: `robot.moveTo(desired_x, desired_y, 1);`. */
struct TaskCallAst
{
    std::string instanceName;
    std::string taskName;
    std::vector<ExprAstPtr> args;
    int line = 0;
};

/** A complete RoboX program. */
struct ProgramAst
{
    std::vector<SystemDefAst> systems;
    std::vector<GlobalRefAst> references;
    std::vector<InstantiationAst> instances;
    std::vector<TaskCallAst> taskCalls;
};

} // namespace robox::dsl

#endif // ROBOX_DSL_AST_HH
