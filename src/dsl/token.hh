/**
 * @file
 * Token definitions for the RoboX DSL lexer.
 */

#ifndef ROBOX_DSL_TOKEN_HH
#define ROBOX_DSL_TOKEN_HH

#include <string>

namespace robox::dsl
{

/** Token kinds of the RoboX language (Table I plus punctuation). */
enum class TokenKind
{
    // Literals and names.
    Identifier,
    Number,

    // Component keywords.
    KwSystem,
    KwTask,

    // Datatype keywords.
    KwInput,
    KwState,
    KwParam,
    KwPenalty,
    KwConstraint,
    KwReference,
    KwRange,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Dot,
    Colon,
    Assign,      //!< '='  (symbolic assignment)
    ImpAssign,   //!< '<=' (imperative assignment)
    Plus,
    Minus,
    Star,
    Slash,
    Caret,

    EndOfFile,
};

/** Printable name of a token kind, for diagnostics. */
const char *tokenKindName(TokenKind kind);

/** A lexed token with its source location. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;    //!< Identifier spelling or number literal text.
    double number = 0.0; //!< Parsed value when kind == Number.
    int line = 0;        //!< 1-based source line.
    int column = 0;      //!< 1-based source column.

    /** Location string "line:col" for error messages. */
    std::string location() const;
};

} // namespace robox::dsl

#endif // ROBOX_DSL_TOKEN_HH
