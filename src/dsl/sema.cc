/**
 * @file
 * Implementation of RoboX DSL semantic analysis.
 */

#include "dsl/sema.hh"

#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "dsl/parser.hh"
#include "support/logging.hh"

namespace robox::dsl
{

namespace
{

/** What a name refers to during analysis. */
enum class SymKind
{
    State,
    Input,
    Param,
    Reference,
    Penalty,
    Constraint,
    Range,
    Alias,
};

const char *
symKindName(SymKind kind)
{
    switch (kind) {
      case SymKind::State: return "state";
      case SymKind::Input: return "input";
      case SymKind::Param: return "param";
      case SymKind::Reference: return "reference";
      case SymKind::Penalty: return "penalty";
      case SymKind::Constraint: return "constraint";
      case SymKind::Range: return "range";
      case SymKind::Alias: return "alias";
    }
    return "?";
}

/** Symbol table entry. */
struct Symbol
{
    SymKind kind = SymKind::Alias;
    std::vector<int> dims;          //!< Array dimensions; empty = scalar.
    int flatBase = -1;              //!< State/Input/Reference flat offset.
    int termBase = -1;              //!< Penalty/Constraint flat offset.
    double paramValue = 0.0;        //!< Param value.
    bool paramSet = false;          //!< Param has a value.
    int rangeLo = 0, rangeHi = 0;   //!< Range interval [lo, hi).
    std::vector<sym::Expr> alias;   //!< Alias payload (flattened).
    std::vector<bool> aliasSet;     //!< Alias element defined.

    int
    flatSize() const
    {
        int n = 1;
        for (int d : dims)
            n *= d;
        return n;
    }
};

/** Name with a flattened index rendered like the DSL ("pos[1]"). */
std::string
elementName(const std::string &base, const std::vector<int> &dims, int flat)
{
    if (dims.empty())
        return base;
    std::vector<int> idx(dims.size());
    int rem = flat;
    for (std::size_t d = dims.size(); d-- > 0;) {
        idx[d] = rem % dims[d];
        rem /= dims[d];
    }
    std::string out = base;
    for (int v : idx)
        out += "[" + std::to_string(v) + "]";
    return out;
}

/** The analyzer: walks one System + Task pair into a ModelSpec. */
class Analyzer
{
  public:
    ModelSpec
    run(const ProgramAst &program, const std::string &task_name)
    {
        if (program.instances.empty())
            fatal("program has no system instantiation");
        const InstantiationAst &inst = program.instances.front();

        const SystemDefAst *sys = nullptr;
        for (const SystemDefAst &s : program.systems)
            if (s.name == inst.systemName)
                sys = &s;
        if (!sys) {
            fatal("line {}: instantiation of unknown system '{}'",
                  inst.line, inst.systemName);
        }

        const TaskCallAst *call = nullptr;
        for (const TaskCallAst &c : program.taskCalls) {
            if (c.instanceName != inst.instanceName)
                continue;
            if (task_name.empty() || c.taskName == task_name) {
                call = &c;
                break;
            }
        }
        if (!call) {
            if (task_name.empty())
                fatal("no task call on instance '{}'",
                      inst.instanceName);
            fatal("no call of task '{}' on instance '{}'", task_name,
                  inst.instanceName);
        }

        const TaskDefAst *task = nullptr;
        for (const TaskDefAst &t : sys->tasks)
            if (t.name == call->taskName)
                task = &t;
        if (!task) {
            fatal("line {}: system '{}' has no task '{}'", call->line,
                  sys->name, call->taskName);
        }

        spec_.systemName = sys->name;
        spec_.taskName = task->name;

        registerGlobalReferences(program);
        bindSystemParams(*sys, inst);
        declarePass(*sys);
        spec_.dynamics.assign(spec_.stateNames.size(), sym::Expr());
        dynamics_set_.assign(spec_.stateNames.size(), false);
        spec_.stateLower.assign(spec_.stateNames.size(), -kUnbounded);
        spec_.stateUpper.assign(spec_.stateNames.size(), kUnbounded);
        spec_.inputLower.assign(spec_.inputNames.size(), -kUnbounded);
        spec_.inputUpper.assign(spec_.inputNames.size(), kUnbounded);

        bodyPass(sys->body, /*in_task=*/false);
        bindTaskParams(*task, *call, program);
        bodyPass(task->body, /*in_task=*/true);
        validate();
        return spec_;
    }

  private:
    // ---------------------------------------------------------------
    // Symbol table helpers.
    // ---------------------------------------------------------------

    Symbol &
    declare(const std::string &name, Symbol sym, int line)
    {
        if (table_.count(name)) {
            fatal("line {}: redeclaration of '{}' (previously a {})",
                  line, name, symKindName(table_[name].kind));
        }
        return table_[name] = std::move(sym);
    }

    Symbol *
    lookup(const std::string &name)
    {
        auto it = table_.find(name);
        return it == table_.end() ? nullptr : &it->second;
    }

    // ---------------------------------------------------------------
    // Registration passes.
    // ---------------------------------------------------------------

    void
    registerGlobalReferences(const ProgramAst &program)
    {
        for (const GlobalRefAst &ref : program.references) {
            Symbol sym;
            sym.kind = SymKind::Reference;
            for (const ExprAstPtr &dim : ref.dims)
                sym.dims.push_back(evalConstInt(*dim));
            sym.flatBase = static_cast<int>(spec_.referenceNames.size());
            for (int i = 0; i < sym.flatSize(); ++i)
                spec_.referenceNames.push_back(
                    elementName(ref.name, sym.dims, i));
            declare(ref.name, std::move(sym), ref.line);
        }
    }

    void
    bindSystemParams(const SystemDefAst &sys, const InstantiationAst &inst)
    {
        if (inst.args.size() != sys.params.size()) {
            fatal("line {}: system '{}' takes {} parameter(s) but "
                  "instantiation passes {}", inst.line, sys.name,
                  sys.params.size(), inst.args.size());
        }
        for (std::size_t i = 0; i < sys.params.size(); ++i) {
            const FormalParamAst &formal = sys.params[i];
            if (formal.kind != DeclKind::Param) {
                fatal("line {}: system parameters must be 'param', '{}' "
                      "is a reference", formal.line, formal.name);
            }
            Symbol sym;
            sym.kind = SymKind::Param;
            sym.paramValue = evalConstDouble(*inst.args[i]);
            sym.paramSet = true;
            declare(formal.name, std::move(sym), formal.line);
        }
    }

    /** Register states, inputs (ids), so assignment order is free. */
    void
    declarePass(const SystemDefAst &sys)
    {
        for (const StmtAst &stmt : sys.body) {
            if (!stmt.decl)
                continue;
            const DeclStmtAst &decl = *stmt.decl;
            if (decl.kind != DeclKind::State && decl.kind != DeclKind::Input)
                continue;
            for (const DeclaratorAst &d : decl.decls) {
                Symbol sym;
                sym.kind = decl.kind == DeclKind::State ? SymKind::State
                                                        : SymKind::Input;
                for (const ExprAstPtr &dim : d.dims)
                    sym.dims.push_back(evalConstInt(*dim));
                auto &names = decl.kind == DeclKind::State
                                  ? spec_.stateNames
                                  : spec_.inputNames;
                sym.flatBase = static_cast<int>(names.size());
                for (int i = 0; i < sym.flatSize(); ++i)
                    names.push_back(elementName(d.name, sym.dims, i));
                declare(d.name, std::move(sym), decl.line);
            }
        }
    }

    void
    bindTaskParams(const TaskDefAst &task, const TaskCallAst &call,
                   const ProgramAst &program)
    {
        (void)program;
        if (call.args.size() != task.params.size()) {
            fatal("line {}: task '{}' takes {} parameter(s) but call "
                  "passes {}", call.line, task.name, task.params.size(),
                  call.args.size());
        }
        for (std::size_t i = 0; i < task.params.size(); ++i) {
            const FormalParamAst &formal = task.params[i];
            const ExprAst &arg = *call.args[i];
            if (formal.kind == DeclKind::Reference) {
                if (arg.kind != ExprAstKind::VarRef || !arg.indices.empty()) {
                    fatal("line {}: argument for reference parameter '{}' "
                          "must be a global reference name", call.line,
                          formal.name);
                }
                Symbol *global = lookup(arg.name);
                if (!global || global->kind != SymKind::Reference) {
                    fatal("line {}: '{}' is not a declared reference",
                          arg.line, arg.name);
                }
                Symbol sym = *global; // Same flat ids: an alias binding.
                if (formal.name != arg.name)
                    declare(formal.name, std::move(sym), formal.line);
            } else {
                Symbol sym;
                sym.kind = SymKind::Param;
                sym.paramValue = evalConstDouble(arg);
                sym.paramSet = true;
                declare(formal.name, std::move(sym), formal.line);
            }
        }
    }

    // ---------------------------------------------------------------
    // Statement processing (program order).
    // ---------------------------------------------------------------

    void
    bodyPass(const std::vector<StmtAst> &body, bool in_task)
    {
        for (const StmtAst &stmt : body) {
            if (stmt.decl)
                handleDecl(*stmt.decl, in_task);
            else
                handleAssign(*stmt.assign, in_task);
        }
    }

    void
    handleDecl(const DeclStmtAst &decl, bool in_task)
    {
        switch (decl.kind) {
          case DeclKind::State:
          case DeclKind::Input:
            if (in_task) {
                fatal("line {}: {} declarations belong in the System body",
                      decl.line, declKindName(decl.kind));
            }
            return; // Handled by declarePass.
          case DeclKind::Param:
            for (const DeclaratorAst &d : decl.decls) {
                if (!d.dims.empty()) {
                    fatal("line {}: param '{}' must be scalar", decl.line,
                          d.name);
                }
                Symbol sym;
                sym.kind = SymKind::Param;
                declare(d.name, std::move(sym), decl.line);
            }
            return;
          case DeclKind::Range:
            for (const DeclaratorAst &d : decl.decls) {
                Symbol sym;
                sym.kind = SymKind::Range;
                sym.rangeLo = evalConstInt(*d.rangeLo);
                sym.rangeHi = evalConstInt(*d.rangeHi);
                if (sym.rangeHi <= sym.rangeLo) {
                    fatal("line {}: range '{}' interval [{}:{}) is empty",
                          decl.line, d.name, sym.rangeLo, sym.rangeHi);
                }
                declare(d.name, std::move(sym), decl.line);
            }
            return;
          case DeclKind::Penalty:
          case DeclKind::Constraint: {
            if (!in_task) {
                fatal("line {}: {} declarations belong in a Task body",
                      decl.line, declKindName(decl.kind));
            }
            for (const DeclaratorAst &d : decl.decls) {
                Symbol sym;
                sym.kind = decl.kind == DeclKind::Penalty
                               ? SymKind::Penalty
                               : SymKind::Constraint;
                for (const ExprAstPtr &dim : d.dims)
                    sym.dims.push_back(evalConstInt(*dim));
                int count = sym.flatSize();
                if (decl.kind == DeclKind::Penalty) {
                    sym.termBase = static_cast<int>(spec_.penalties.size());
                    for (int i = 0; i < count; ++i) {
                        PenaltyTerm term;
                        term.name = elementName(d.name, sym.dims, i);
                        spec_.penalties.push_back(std::move(term));
                    }
                } else {
                    sym.termBase =
                        static_cast<int>(spec_.constraints.size());
                    for (int i = 0; i < count; ++i) {
                        ConstraintTerm term;
                        term.name = elementName(d.name, sym.dims, i);
                        spec_.constraints.push_back(std::move(term));
                    }
                }
                declare(d.name, std::move(sym), decl.line);
            }
            return;
          }
          case DeclKind::Reference:
            fatal("line {}: references must be declared at global scope",
                  decl.line);
        }
    }

    /** Free range variables appearing in lvalue index expressions. */
    std::vector<std::string>
    freeRangeVars(const LValueAst &lv)
    {
        std::vector<std::string> out;
        for (const ExprAstPtr &idx : lv.indices)
            collectFreeRanges(*idx, out);
        return out;
    }

    void
    collectFreeRanges(const ExprAst &e, std::vector<std::string> &out)
    {
        if (e.kind == ExprAstKind::VarRef && e.indices.empty()) {
            Symbol *sym = lookup(e.name);
            if (sym && sym->kind == SymKind::Range &&
                !range_bindings_.count(e.name)) {
                for (const std::string &s : out)
                    if (s == e.name)
                        return;
                out.push_back(e.name);
            }
            return;
        }
        for (const ExprAstPtr &c : e.indices)
            collectFreeRanges(*c, out);
        if (e.lhs)
            collectFreeRanges(*e.lhs, out);
        if (e.rhs)
            collectFreeRanges(*e.rhs, out);
        for (const ExprAstPtr &a : e.args)
            collectFreeRanges(*a, out);
    }

    /**
     * Expand an assignment over the Cartesian product of its free range
     * variables, invoking fn once per binding.
     */
    void
    forEachBinding(const std::vector<std::string> &ranges,
                   const std::function<void()> &fn, std::size_t depth = 0)
    {
        if (depth == ranges.size()) {
            fn();
            return;
        }
        Symbol *sym = lookup(ranges[depth]);
        robox_assert(sym && sym->kind == SymKind::Range);
        for (int v = sym->rangeLo; v < sym->rangeHi; ++v) {
            range_bindings_[ranges[depth]] = v;
            forEachBinding(ranges, fn, depth + 1);
        }
        range_bindings_.erase(ranges[depth]);
    }

    void
    handleAssign(const AssignStmtAst &stmt, bool in_task)
    {
        const LValueAst &lv = stmt.lhs;
        Symbol *sym = lookup(lv.name);

        // Implicit symbolic alias: undeclared scalar target of '='.
        if (!sym) {
            if (stmt.imperative) {
                fatal("line {}: cannot imperatively assign to undeclared "
                      "name '{}'", stmt.line, lv.name);
            }
            if (!lv.indices.empty() || !lv.field.empty()) {
                fatal("line {}: undeclared name '{}' may only be used as "
                      "a scalar symbolic alias", stmt.line, lv.name);
            }
            Symbol alias;
            alias.kind = SymKind::Alias;
            alias.alias.resize(1);
            alias.aliasSet.resize(1, false);
            sym = &declare(lv.name, std::move(alias), stmt.line);
            sym->alias[0] = toExpr(*stmt.rhs);
            sym->aliasSet[0] = true;
            return;
        }

        std::vector<std::string> ranges = freeRangeVars(lv);
        forEachBinding(ranges, [&] {
            applyAssignment(stmt, *sym, in_task);
        });
    }

    /** Flat element index of an lvalue under current range bindings. */
    int
    lvalueFlatIndex(const LValueAst &lv, const Symbol &sym)
    {
        if (lv.indices.empty())
            return -1; // Whole variable.
        if (lv.indices.size() != sym.dims.size()) {
            fatal("line {}: '{}' has {} dimension(s) but {} index(es) "
                  "given", lv.line, lv.name, sym.dims.size(),
                  lv.indices.size());
        }
        int flat = 0;
        for (std::size_t d = 0; d < sym.dims.size(); ++d) {
            int idx = evalConstInt(*lv.indices[d]);
            if (idx < 0 || idx >= sym.dims[d]) {
                fatal("line {}: index {} out of range [0, {}) on '{}'",
                      lv.line, idx, sym.dims[d], lv.name);
            }
            flat = flat * sym.dims[d] + idx;
        }
        return flat;
    }

    void
    applyAssignment(const AssignStmtAst &stmt, Symbol &sym, bool in_task)
    {
        const LValueAst &lv = stmt.lhs;
        int flat = lvalueFlatIndex(lv, sym);

        switch (sym.kind) {
          case SymKind::State:
            if (lv.field == "dt") {
                requireSymbolic(stmt, "dt");
                assignDynamics(stmt, sym, flat);
            } else if (lv.field == "lower_bound" ||
                       lv.field == "upper_bound") {
                requireImperative(stmt, lv.field);
                assignBound(stmt, sym, flat, spec_.stateLower,
                            spec_.stateUpper);
            } else {
                fatal("line {}: state '{}' supports fields .dt, "
                      ".lower_bound, .upper_bound", stmt.line, lv.name);
            }
            return;
          case SymKind::Input:
            if (lv.field == "lower_bound" || lv.field == "upper_bound") {
                requireImperative(stmt, lv.field);
                assignBound(stmt, sym, flat, spec_.inputLower,
                            spec_.inputUpper);
            } else {
                fatal("line {}: input '{}' supports fields .lower_bound "
                      "and .upper_bound", stmt.line, lv.name);
            }
            return;
          case SymKind::Param:
            if (!lv.field.empty()) {
                fatal("line {}: params have no fields", stmt.line);
            }
            requireImperative(stmt, "param");
            sym.paramValue = evalConstDouble(*stmt.rhs);
            sym.paramSet = true;
            return;
          case SymKind::Penalty: {
            if (!in_task) {
                fatal("line {}: penalties may only be assigned in a Task",
                      stmt.line);
            }
            int base = sym.termBase;
            int lo = flat < 0 ? 0 : flat;
            int hi = flat < 0 ? sym.flatSize() : flat + 1;
            if (lv.field == "running" || lv.field == "terminal") {
                requireSymbolic(stmt, lv.field);
                sym::Expr e = toExpr(*stmt.rhs);
                for (int i = lo; i < hi; ++i) {
                    PenaltyTerm &term = spec_.penalties[base + i];
                    term.expr = e;
                    term.terminal = lv.field == "terminal";
                    penalty_set_.insert(base + i);
                }
            } else if (lv.field == "weight") {
                requireImperative(stmt, "weight");
                double w = evalConstDouble(*stmt.rhs);
                for (int i = lo; i < hi; ++i)
                    spec_.penalties[base + i].weight = w;
            } else {
                fatal("line {}: penalty '{}' supports fields .running, "
                      ".terminal, .weight", stmt.line, lv.name);
            }
            return;
          }
          case SymKind::Constraint: {
            if (!in_task) {
                fatal("line {}: constraints may only be assigned in a "
                      "Task", stmt.line);
            }
            int base = sym.termBase;
            int lo = flat < 0 ? 0 : flat;
            int hi = flat < 0 ? sym.flatSize() : flat + 1;
            if (lv.field == "running" || lv.field == "terminal") {
                requireSymbolic(stmt, lv.field);
                sym::Expr e = toExpr(*stmt.rhs);
                for (int i = lo; i < hi; ++i) {
                    ConstraintTerm &term = spec_.constraints[base + i];
                    term.expr = e;
                    term.terminal = lv.field == "terminal";
                    constraint_set_.insert(base + i);
                }
            } else if (lv.field == "lower_bound" ||
                       lv.field == "upper_bound" || lv.field == "equals") {
                requireImperative(stmt, lv.field);
                double v = evalConstDouble(*stmt.rhs);
                for (int i = lo; i < hi; ++i) {
                    ConstraintTerm &term = spec_.constraints[base + i];
                    if (lv.field == "lower_bound") {
                        term.lower = v;
                    } else if (lv.field == "upper_bound") {
                        term.upper = v;
                    } else {
                        term.isEquality = true;
                        term.equalsValue = v;
                    }
                }
            } else {
                fatal("line {}: constraint '{}' supports fields .running, "
                      ".terminal, .lower_bound, .upper_bound, .equals",
                      stmt.line, lv.name);
            }
            return;
          }
          case SymKind::Alias: {
            if (stmt.imperative || !lv.field.empty()) {
                fatal("line {}: alias '{}' only supports plain symbolic "
                      "assignment", stmt.line, lv.name);
            }
            fatal("line {}: alias '{}' is already defined", stmt.line,
                  lv.name);
          }
          case SymKind::Reference:
          case SymKind::Range:
            fatal("line {}: cannot assign to {} '{}'", stmt.line,
                  symKindName(sym.kind), lv.name);
        }
    }

    void
    requireSymbolic(const AssignStmtAst &stmt, const std::string &what)
    {
        if (stmt.imperative) {
            fatal("line {}: .{} requires a symbolic assignment '='",
                  stmt.line, what);
        }
    }

    void
    requireImperative(const AssignStmtAst &stmt, const std::string &what)
    {
        if (!stmt.imperative) {
            fatal("line {}: {} requires an imperative assignment '<='",
                  stmt.line, what);
        }
    }

    void
    assignDynamics(const AssignStmtAst &stmt, const Symbol &sym, int flat)
    {
        sym::Expr e = toExpr(*stmt.rhs);
        int lo = flat < 0 ? 0 : flat;
        int hi = flat < 0 ? sym.flatSize() : flat + 1;
        for (int i = lo; i < hi; ++i) {
            int state = sym.flatBase + i;
            if (dynamics_set_[state]) {
                fatal("line {}: dynamics of '{}' already defined",
                      stmt.line, spec_.stateNames[state]);
            }
            spec_.dynamics[state] = e;
            dynamics_set_[state] = true;
        }
    }

    void
    assignBound(const AssignStmtAst &stmt, const Symbol &sym, int flat,
                std::vector<double> &lower, std::vector<double> &upper)
    {
        double v = evalConstDouble(*stmt.rhs);
        bool is_lower = stmt.lhs.field == "lower_bound";
        int lo = flat < 0 ? 0 : flat;
        int hi = flat < 0 ? sym.flatSize() : flat + 1;
        for (int i = lo; i < hi; ++i) {
            if (is_lower)
                lower[sym.flatBase + i] = v;
            else
                upper[sym.flatBase + i] = v;
        }
    }

    // ---------------------------------------------------------------
    // Expression conversion.
    // ---------------------------------------------------------------

    /** Imperative (compile-time) evaluation to a double. */
    double
    evalConstDouble(const ExprAst &e)
    {
        switch (e.kind) {
          case ExprAstKind::Number:
            return e.number;
          case ExprAstKind::Unary:
            return -evalConstDouble(*e.lhs);
          case ExprAstKind::Binary: {
            if (e.op == '^') {
                return std::pow(evalConstDouble(*e.lhs),
                                evalConstDouble(*e.rhs));
            }
            double a = evalConstDouble(*e.lhs);
            double b = evalConstDouble(*e.rhs);
            switch (e.op) {
              case '+': return a + b;
              case '-': return a - b;
              case '*': return a * b;
              case '/': return b != 0.0
                             ? a / b
                             : throwDivZero(e);
              default: panic("bad binary op '{}'", std::string(1, e.op));
            }
          }
          case ExprAstKind::Call: {
            double a = evalConstDouble(*e.args[0]);
            if (e.name == "sin") return std::sin(a);
            if (e.name == "cos") return std::cos(a);
            if (e.name == "tan") return std::tan(a);
            if (e.name == "asin") return std::asin(a);
            if (e.name == "acos") return std::acos(a);
            if (e.name == "atan") return std::atan(a);
            if (e.name == "exp") return std::exp(a);
            if (e.name == "sqrt") return std::sqrt(a);
            panic("bad call '{}'", e.name);
          }
          case ExprAstKind::VarRef: {
            Symbol *sym = lookup(e.name);
            if (!sym) {
                fatal("line {}: undeclared name '{}' in imperative "
                      "expression", e.line, e.name);
            }
            if (sym->kind == SymKind::Param) {
                if (!sym->paramSet) {
                    fatal("line {}: param '{}' used before it was given "
                          "a value", e.line, e.name);
                }
                return sym->paramValue;
            }
            if (sym->kind == SymKind::Range) {
                auto it = range_bindings_.find(e.name);
                if (it == range_bindings_.end()) {
                    fatal("line {}: range variable '{}' is unbound here",
                          e.line, e.name);
                }
                return static_cast<double>(it->second);
            }
            fatal("line {}: imperative expressions may only use params "
                  "and numbers; '{}' is a {}", e.line, e.name,
                  symKindName(sym->kind));
          }
          case ExprAstKind::GroupOp: {
            // Imperative group op over bound ranges.
            double acc = e.name == "min" ? kUnbounded
                       : e.name == "max" ? -kUnbounded
                       : 0.0;
            bool first = true;
            forEachGroupBinding(e, [&] {
                double v = evalConstDouble(*e.args[0]);
                if (e.name == "sum") {
                    acc += v;
                } else if (e.name == "norm") {
                    acc += v * v;
                } else if (e.name == "min") {
                    acc = first ? v : std::fmin(acc, v);
                } else {
                    acc = first ? v : std::fmax(acc, v);
                }
                first = false;
            });
            return e.name == "norm" ? std::sqrt(acc) : acc;
          }
        }
        panic("evalConstDouble: unreachable");
    }

    [[noreturn]] double
    throwDivZero(const ExprAst &e)
    {
        fatal("line {}: division by zero in imperative expression",
              e.line);
    }

    int
    evalConstInt(const ExprAst &e)
    {
        double v = evalConstDouble(e);
        double intpart = 0.0;
        if (std::modf(v, &intpart) != 0.0) {
            fatal("line {}: expected an integer, got {}", e.line, v);
        }
        return static_cast<int>(intpart);
    }

    /** Iterate the Cartesian product of a group op's range variables. */
    void
    forEachGroupBinding(const ExprAst &e, const std::function<void()> &fn,
                        std::size_t depth = 0)
    {
        if (depth == e.groupVars.size()) {
            fn();
            return;
        }
        const std::string &name = e.groupVars[depth];
        Symbol *sym = lookup(name);
        if (!sym || sym->kind != SymKind::Range) {
            fatal("line {}: group operation variable '{}' is not a "
                  "declared range", e.line, name);
        }
        if (range_bindings_.count(name)) {
            fatal("line {}: range variable '{}' is already bound by an "
                  "enclosing operation", e.line, name);
        }
        for (int v = sym->rangeLo; v < sym->rangeHi; ++v) {
            range_bindings_[name] = v;
            forEachGroupBinding(e, fn, depth + 1);
        }
        range_bindings_.erase(name);
    }

    /** Symbolic conversion to a sym::Expr. */
    sym::Expr
    toExpr(const ExprAst &e)
    {
        switch (e.kind) {
          case ExprAstKind::Number:
            return sym::Expr(e.number);
          case ExprAstKind::Unary:
            return -toExpr(*e.lhs);
          case ExprAstKind::Binary:
            switch (e.op) {
              case '+': return toExpr(*e.lhs) + toExpr(*e.rhs);
              case '-': return toExpr(*e.lhs) - toExpr(*e.rhs);
              case '*': return toExpr(*e.lhs) * toExpr(*e.rhs);
              case '/': return toExpr(*e.lhs) / toExpr(*e.rhs);
              case '^':
                return sym::pow(toExpr(*e.lhs), evalConstInt(*e.rhs));
              default:
                panic("bad binary op");
            }
          case ExprAstKind::Call: {
            sym::Expr a = toExpr(*e.args[0]);
            if (e.name == "sin") return sym::sin(a);
            if (e.name == "cos") return sym::cos(a);
            if (e.name == "tan") return sym::tan(a);
            if (e.name == "asin") return sym::asin(a);
            if (e.name == "acos") return sym::acos(a);
            if (e.name == "atan") return sym::atan(a);
            if (e.name == "exp") return sym::exp(a);
            if (e.name == "sqrt") return sym::sqrt(a);
            panic("bad call '{}'", e.name);
          }
          case ExprAstKind::VarRef:
            return varRefToExpr(e);
          case ExprAstKind::GroupOp:
            return groupOpToExpr(e);
        }
        panic("toExpr: unreachable");
    }

    sym::Expr
    varRefToExpr(const ExprAst &e)
    {
        Symbol *sym = lookup(e.name);
        if (!sym) {
            fatal("line {}: undeclared name '{}' in expression", e.line,
                  e.name);
        }
        switch (sym->kind) {
          case SymKind::Param:
            if (!sym->paramSet) {
                fatal("line {}: param '{}' used before it was given a "
                      "value", e.line, e.name);
            }
            return sym::Expr(sym->paramValue);
          case SymKind::Range: {
            auto it = range_bindings_.find(e.name);
            if (it == range_bindings_.end()) {
                fatal("line {}: range variable '{}' is unbound here",
                      e.line, e.name);
            }
            return sym::Expr(static_cast<double>(it->second));
          }
          case SymKind::State:
          case SymKind::Input:
          case SymKind::Reference: {
            int flat = flatIndexOf(e, *sym);
            int var_id;
            std::string name;
            if (sym->kind == SymKind::State) {
                var_id = spec_.stateVarId(sym->flatBase + flat);
                name = spec_.stateNames[sym->flatBase + flat];
            } else if (sym->kind == SymKind::Input) {
                var_id = spec_.inputVarId(sym->flatBase + flat);
                name = spec_.inputNames[sym->flatBase + flat];
            } else {
                var_id = spec_.refVarId(sym->flatBase + flat);
                name = spec_.referenceNames[sym->flatBase + flat];
            }
            return sym::Expr::variable(var_id, name);
          }
          case SymKind::Alias: {
            int flat = flatIndexOf(e, *sym);
            if (!sym->aliasSet[flat]) {
                fatal("line {}: alias '{}' used before assignment",
                      e.line, e.name);
            }
            return sym->alias[flat];
          }
          case SymKind::Penalty:
          case SymKind::Constraint:
            fatal("line {}: {} '{}' cannot appear in an expression",
                  e.line, symKindName(sym->kind), e.name);
        }
        panic("varRefToExpr: unreachable");
    }

    int
    flatIndexOf(const ExprAst &e, const Symbol &sym)
    {
        if (e.indices.empty()) {
            if (!sym.dims.empty()) {
                fatal("line {}: '{}' is an array; index it or use a group "
                      "operation", e.line, e.name);
            }
            return 0;
        }
        if (e.indices.size() != sym.dims.size()) {
            fatal("line {}: '{}' has {} dimension(s) but {} index(es)",
                  e.line, e.name, sym.dims.size(), e.indices.size());
        }
        int flat = 0;
        for (std::size_t d = 0; d < sym.dims.size(); ++d) {
            int idx = evalConstInt(*e.indices[d]);
            if (idx < 0 || idx >= sym.dims[d]) {
                fatal("line {}: index {} out of range [0, {}) on '{}'",
                      e.line, idx, sym.dims[d], e.name);
            }
            flat = flat * sym.dims[d] + idx;
        }
        return flat;
    }

    sym::Expr
    groupOpToExpr(const ExprAst &e)
    {
        if (e.name == "sum" || e.name == "norm") {
            sym::Expr acc(0.0);
            forEachGroupBinding(e, [&] {
                sym::Expr v = toExpr(*e.args[0]);
                acc = e.name == "norm" ? acc + v * v : acc + v;
            });
            return e.name == "norm" ? sym::sqrt(acc) : acc;
        }
        // min / max fold.
        bool first = true;
        sym::Expr acc;
        forEachGroupBinding(e, [&] {
            sym::Expr v = toExpr(*e.args[0]);
            if (first) {
                acc = v;
                first = false;
            } else {
                acc = e.name == "min" ? sym::min(acc, v)
                                      : sym::max(acc, v);
            }
        });
        return acc;
    }

    // ---------------------------------------------------------------
    // Final validation.
    // ---------------------------------------------------------------

    void
    validate()
    {
        if (spec_.stateNames.empty())
            fatal("system '{}' declares no states", spec_.systemName);
        if (spec_.inputNames.empty())
            fatal("system '{}' declares no inputs", spec_.systemName);
        for (std::size_t i = 0; i < spec_.stateNames.size(); ++i) {
            if (!dynamics_set_[i]) {
                fatal("state '{}' has no dynamics (.dt was never "
                      "assigned)", spec_.stateNames[i]);
            }
        }
        for (std::size_t i = 0; i < spec_.penalties.size(); ++i) {
            if (!penalty_set_.count(static_cast<int>(i))) {
                fatal("penalty '{}' was declared but never assigned",
                      spec_.penalties[i].name);
            }
        }
        for (std::size_t i = 0; i < spec_.constraints.size(); ++i) {
            const ConstraintTerm &c = spec_.constraints[i];
            if (!constraint_set_.count(static_cast<int>(i))) {
                fatal("constraint '{}' was declared but never assigned",
                      c.name);
            }
            if (!c.isEquality && c.lower == -kUnbounded &&
                c.upper == kUnbounded) {
                fatal("constraint '{}' has no bounds and no equals",
                      c.name);
            }
        }
        for (std::size_t i = 0; i < spec_.inputNames.size(); ++i) {
            if (spec_.inputLower[i] > spec_.inputUpper[i]) {
                fatal("input '{}' has lower bound {} above upper bound "
                      "{}", spec_.inputNames[i], spec_.inputLower[i],
                      spec_.inputUpper[i]);
            }
        }
        for (std::size_t i = 0; i < spec_.stateNames.size(); ++i) {
            if (spec_.stateLower[i] > spec_.stateUpper[i]) {
                fatal("state '{}' has lower bound {} above upper bound "
                      "{}", spec_.stateNames[i], spec_.stateLower[i],
                      spec_.stateUpper[i]);
            }
        }
    }

    ModelSpec spec_;
    std::unordered_map<std::string, Symbol> table_;
    std::unordered_map<std::string, int> range_bindings_;
    std::vector<bool> dynamics_set_;
    std::set<int> penalty_set_;
    std::set<int> constraint_set_;
};

} // namespace

ModelSpec
analyze(const ProgramAst &program, const std::string &task_name)
{
    Analyzer analyzer;
    return analyzer.run(program, task_name);
}

ModelSpec
analyzeSource(const std::string &source, const std::string &task_name)
{
    return analyze(parseProgram(source), task_name);
}

} // namespace robox::dsl
