/**
 * @file
 * Canonical formatter for RoboX programs.
 *
 * Renders a parsed ProgramAst back to source text with uniform
 * two-space indentation and spacing. Formatting is semantics
 * preserving: parsing the formatted text and analyzing it produces a
 * model equivalent to the original (round-trip tested). Useful as a
 * `robox-fmt` building block and for emitting machine-generated
 * programs readably.
 */

#ifndef ROBOX_DSL_FORMAT_HH
#define ROBOX_DSL_FORMAT_HH

#include <string>

#include "dsl/ast.hh"

namespace robox::dsl
{

/** Render an expression subtree to source text. */
std::string formatExpr(const ExprAst &expr);

/** Render a complete program to canonical source text. */
std::string formatProgram(const ProgramAst &program);

/** Parse then re-render source text in canonical form. */
std::string formatSource(const std::string &source);

} // namespace robox::dsl

#endif // ROBOX_DSL_FORMAT_HH
