/**
 * @file
 * ModelSpec: the concrete robot-plus-task model produced by semantic
 * analysis of a RoboX program.
 *
 * A ModelSpec is the hand-off between the DSL frontend and the Program
 * Translator: all System/Task parameters have been bound to values, all
 * array variables flattened, and all group operations expanded, leaving
 * plain symbolic expressions over a dense variable space laid out as
 * [states | inputs | references].
 */

#ifndef ROBOX_DSL_MODEL_SPEC_HH
#define ROBOX_DSL_MODEL_SPEC_HH

#include <limits>
#include <string>
#include <vector>

#include "sym/expr.hh"

namespace robox::dsl
{

/** Positive infinity used for "no bound". */
constexpr double kUnbounded = std::numeric_limits<double>::infinity();

/** One scalar penalty term of the task objective. */
struct PenaltyTerm
{
    std::string name;   //!< Flattened name, e.g. "target_x" or "p[2]".
    sym::Expr expr;     //!< The penalized expression p_i.
    double weight = 1.0; //!< W_i in sum_i ||p_i||^2_{W_i}.
    bool terminal = false; //!< Terminal (last step only) vs. running.
};

/** One scalar task constraint. */
struct ConstraintTerm
{
    std::string name;
    sym::Expr expr;
    double lower = -kUnbounded; //!< Inequality lower bound.
    double upper = kUnbounded;  //!< Inequality upper bound.
    bool isEquality = false;    //!< True when the equals field was set.
    double equalsValue = 0.0;   //!< Equality target.
    bool terminal = false;      //!< Terminal vs. running enforcement.
};

/** The concrete model: system dynamics plus task objective. */
struct ModelSpec
{
    std::string systemName;
    std::string taskName;

    /** Flattened state names, e.g. {"pos[0]", "pos[1]", "angle"}. */
    std::vector<std::string> stateNames;
    std::vector<std::string> inputNames;
    std::vector<std::string> referenceNames;

    /** dx_i/dt expressions over the [states|inputs|references] vars. */
    std::vector<sym::Expr> dynamics;

    /** Box bounds; +-kUnbounded when absent. */
    std::vector<double> stateLower, stateUpper;
    std::vector<double> inputLower, inputUpper;

    std::vector<PenaltyTerm> penalties;
    std::vector<ConstraintTerm> constraints;

    int nx() const { return static_cast<int>(stateNames.size()); }
    int nu() const { return static_cast<int>(inputNames.size()); }
    int nref() const { return static_cast<int>(referenceNames.size()); }

    /** Variable-id layout helpers: [states | inputs | references]. */
    int stateVarId(int i) const { return i; }
    int inputVarId(int i) const { return nx() + i; }
    int refVarId(int i) const { return nx() + nu() + i; }
    int numVars() const { return nx() + nu() + nref(); }

    /** Number of box-bound inequality rows (finite bounds only). */
    int numBoundConstraints() const;

    /** Penalty/constraint counts split by timing, for Table III checks. */
    int numRunningPenalties() const;
    int numTerminalPenalties() const;

    /**
     * Human-readable summary of the analyzed model: variables,
     * dynamics expressions, bounds, penalties, and constraints. Used
     * by examples and diagnostics.
     */
    std::string describe() const;
};

} // namespace robox::dsl

#endif // ROBOX_DSL_MODEL_SPEC_HH
