/**
 * @file
 * Macro dataflow graph (M-DFG) of the MPC control algorithm.
 *
 * The Program Translator lowers each construct of the RoboX program to
 * an M-DFG node (Sec. VII): elementary and nonlinear operations become
 * SCALAR nodes, operations over range intervals become VECTOR nodes,
 * and group operations become GROUP aggregation nodes. The Controller
 * Compiler consumes this graph to produce the static schedules for the
 * compute units, the compute-enabled interconnect, and the memory
 * access engine.
 *
 * Nodes are stored in a topological order by construction: every
 * dependency index is smaller than the dependent node's index.
 */

#ifndef ROBOX_MDFG_MDFG_HH
#define ROBOX_MDFG_MDFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sym/expr.hh"
#include "sym/tape.hh"

namespace robox::mdfg
{

/** Node granularity classes of the M-DFG. */
enum class NodeKind
{
    Scalar, //!< One elementary/nonlinear operation.
    Vector, //!< The same operation applied elementwise over a range.
    Group,  //!< A reduction (sum/mul/min/max) over a range.
};

/** Printable name of a node kind. */
const char *nodeKindName(NodeKind kind);

/** Workload phases of one solver iteration (for grouped statistics). */
enum class Phase
{
    Dynamics,   //!< Dynamics and Jacobian tape evaluation.
    Cost,       //!< Penalty residual/Jacobian tape evaluation.
    Constraint, //!< Inequality row/Jacobian tape evaluation.
    Hessian,    //!< Stage Hessian/gradient assembly (J^T W J, ...).
    Factor,     //!< Riccati backward recursion (Cholesky, gains).
    Rollout,    //!< Forward rollout and slack/dual updates.
};

/** Printable name of a phase. */
const char *phaseName(Phase phase);
/** Number of distinct phases. */
constexpr int kNumPhases = 6;

/** One M-DFG node. */
struct Node
{
    NodeKind kind = NodeKind::Scalar;
    sym::Op op = sym::Op::Add; //!< Operation (aggregation fn for Group).
    int length = 1;            //!< Elements (Vector) or reduced count
                               //!< (Group); 1 for Scalar.
    int ipow = 0;              //!< Integer exponent for Op::Pow nodes.
    Phase phase = Phase::Dynamics;
    int stage = 0;             //!< Horizon stage this node belongs to.
    std::vector<std::uint32_t> deps; //!< Indices of producer nodes.
};

/** Aggregate statistics over a graph. */
struct GraphStats
{
    std::size_t scalarNodes = 0;
    std::size_t vectorNodes = 0;
    std::size_t groupNodes = 0;
    std::size_t totalOps = 0;     //!< Scalar-equivalent operation count.
    std::size_t criticalPath = 0; //!< Longest dependency chain (nodes).
    std::size_t opsPerPhase[kNumPhases] = {};
};

/** The macro dataflow graph. */
class Graph
{
  public:
    /** Append a node; its dependencies must already exist. */
    std::uint32_t add(Node node);

    const std::vector<Node> &nodes() const { return nodes_; }
    std::size_t size() const { return nodes_.size(); }
    const Node &operator[](std::uint32_t id) const { return nodes_[id]; }

    /** Verify the topological invariant (deps precede dependents). */
    bool isTopologicallyOrdered() const;

    /** Compute aggregate statistics including the critical path. */
    GraphStats stats() const;

    /**
     * Append an entire tape as Scalar nodes.
     *
     * @param tape The compiled tape.
     * @param input_nodes Node ids standing for the tape's variable
     *        slots; entries may be UINT32_MAX for external inputs with
     *        no producer (e.g. data loaded from memory).
     * @param phase Phase tag for the appended nodes.
     * @param stage Stage tag for the appended nodes.
     * @param[out] output_nodes Node id of each tape output (entries are
     *        UINT32_MAX when an output aliases an external input).
     */
    void addTape(const sym::Tape &tape,
                 const std::vector<std::uint32_t> &input_nodes,
                 Phase phase, int stage,
                 std::vector<std::uint32_t> &output_nodes);

    /** Scalar-equivalent op count of one node. */
    static std::size_t nodeOps(const Node &node);

  private:
    std::vector<Node> nodes_;
};

} // namespace robox::mdfg

#endif // ROBOX_MDFG_MDFG_HH
