/**
 * @file
 * Implementation of the macro dataflow graph.
 */

#include "mdfg/mdfg.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace robox::mdfg
{

namespace
{
constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();
} // namespace

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Scalar: return "SCALAR";
      case NodeKind::Vector: return "VECTOR";
      case NodeKind::Group: return "GROUP";
    }
    return "?";
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Dynamics: return "dynamics";
      case Phase::Cost: return "cost";
      case Phase::Constraint: return "constraint";
      case Phase::Hessian: return "hessian";
      case Phase::Factor: return "factor";
      case Phase::Rollout: return "rollout";
    }
    return "?";
}

std::uint32_t
Graph::add(Node node)
{
    std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
    for (std::uint32_t dep : node.deps) {
        if (dep != kNoNode && dep >= id)
            panic("mdfg: node {} depends on not-yet-added node {}", id, dep);
    }
    // Drop external-input placeholders from the dependency list.
    node.deps.erase(std::remove(node.deps.begin(), node.deps.end(), kNoNode),
                    node.deps.end());
    nodes_.push_back(std::move(node));
    return id;
}

bool
Graph::isTopologicallyOrdered() const
{
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        for (std::uint32_t dep : nodes_[i].deps)
            if (dep >= i)
                return false;
    return true;
}

std::size_t
Graph::nodeOps(const Node &node)
{
    switch (node.kind) {
      case NodeKind::Scalar:
        return 1;
      case NodeKind::Vector:
        return static_cast<std::size_t>(node.length);
      case NodeKind::Group:
        // A reduction of L values costs L-1 combining operations.
        return node.length > 1 ? static_cast<std::size_t>(node.length - 1)
                               : 1;
    }
    return 1;
}

GraphStats
Graph::stats() const
{
    GraphStats s;
    std::vector<std::uint32_t> depth(nodes_.size(), 1);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        switch (n.kind) {
          case NodeKind::Scalar: ++s.scalarNodes; break;
          case NodeKind::Vector: ++s.vectorNodes; break;
          case NodeKind::Group: ++s.groupNodes; break;
        }
        std::size_t ops = nodeOps(n);
        s.totalOps += ops;
        s.opsPerPhase[static_cast<int>(n.phase)] += ops;
        for (std::uint32_t dep : n.deps)
            depth[i] = std::max(depth[i], depth[dep] + 1);
        s.criticalPath = std::max<std::size_t>(s.criticalPath, depth[i]);
    }
    return s;
}

void
Graph::addTape(const sym::Tape &tape,
               const std::vector<std::uint32_t> &input_nodes, Phase phase,
               int stage, std::vector<std::uint32_t> &output_nodes)
{
    robox_assert(static_cast<int>(input_nodes.size()) == tape.numVars());

    // slot -> node id; external inputs and constants map to kNoNode.
    std::vector<std::uint32_t> slot_node(
        static_cast<std::size_t>(tape.numSlots()), kNoNode);
    for (int i = 0; i < tape.numVars(); ++i)
        slot_node[i] = input_nodes[i];

    for (const sym::Tape::Instr &in : tape.instrs()) {
        Node node;
        node.kind = NodeKind::Scalar;
        node.op = in.op;
        node.ipow = in.ipow;
        node.phase = phase;
        node.stage = stage;
        node.deps.push_back(slot_node[in.a]);
        if (in.b >= 0)
            node.deps.push_back(slot_node[in.b]);
        slot_node[in.dst] = add(std::move(node));
    }

    output_nodes.clear();
    output_nodes.reserve(tape.outputSlots().size());
    for (int slot : tape.outputSlots())
        output_nodes.push_back(slot_node[slot]);
}

} // namespace robox::mdfg
