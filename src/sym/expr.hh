/**
 * @file
 * Symbolic expression DAG for the RoboX toolchain.
 *
 * The DSL's symbolic assignments (Sec. IV) build expressions relating
 * states, inputs, parameters, and references. The Program Translator
 * differentiates these expressions automatically to obtain the gradients
 * and Jacobians the interior-point solver needs (Sec. VII). Expr is an
 * immutable, shared, lightly-simplified expression node; differentiation
 * and evaluation walk the DAG with memoization so shared subterms are
 * processed once.
 */

#ifndef ROBOX_SYM_EXPR_HH
#define ROBOX_SYM_EXPR_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace robox::sym
{

/** Operation tag of an expression node. */
enum class Op
{
    Const,  //!< Numeric literal.
    Var,    //!< Free variable, identified by a dense integer id.
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Pow,    //!< Integer power (the DSL's ^ operator).
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Exp,
    Sqrt,
    Min,    //!< Binary minimum (group-op support; not differentiable).
    Max,    //!< Binary maximum (group-op support; not differentiable).
};

/** True for the single-operand operations (Neg and the nonlinears). */
bool isUnary(Op op);
/** True for Add/Sub/Mul/Div. */
bool isBinary(Op op);
/** Operation name for printing ("add", "sin", ...). */
const char *opName(Op op);

class Expr;

/** Internal immutable DAG node. Use Expr, the shared handle, instead. */
struct ExprNode
{
    Op op = Op::Const;
    double value = 0.0;                 //!< Const payload.
    int varId = -1;                     //!< Var payload.
    std::string varName;                //!< Var payload (diagnostics).
    int ipow = 0;                       //!< Pow exponent.
    std::shared_ptr<const ExprNode> a;  //!< First operand.
    std::shared_ptr<const ExprNode> b;  //!< Second operand.
};

/**
 * A shared, immutable symbolic expression.
 *
 * Construction applies local algebraic simplifications (constant folding,
 * additive/multiplicative identities, double negation) so the downstream
 * dataflow graphs stay compact. Expressions are cheap value types: they
 * hold one shared_ptr.
 */
class Expr
{
  public:
    /** The zero constant. */
    Expr();
    /** A numeric literal. */
    Expr(double value); // NOLINT: implicit by design, mirrors math notation
    /** A free variable with a dense id and a debug name. */
    static Expr variable(int var_id, std::string name);

    Op op() const { return node_->op; }
    double value() const { return node_->value; }
    int varId() const { return node_->varId; }
    const std::string &varName() const { return node_->varName; }
    int ipow() const { return node_->ipow; }
    /** First operand (unary and binary nodes). */
    Expr left() const;
    /** Second operand (binary nodes). */
    Expr right() const;
    /** Identity of the underlying node, for memo tables. */
    const ExprNode *id() const { return node_.get(); }

    bool isConst() const { return node_->op == Op::Const; }
    /** True if this is the literal constant v. */
    bool isConst(double v) const { return isConst() && value() == v; }

    /**
     * Evaluate over a dense environment indexed by variable id.
     * Shared subterms are evaluated once per call.
     */
    double eval(const std::vector<double> &env) const;

    /**
     * Symbolic derivative with respect to the variable with the given
     * id. Shared subterms are differentiated once.
     */
    Expr diff(int var_id) const;

    /** Collect the distinct variable ids referenced, in ascending order. */
    std::vector<int> variables() const;

    /**
     * Replace variables by expressions: vars with id i are replaced by
     * replacements[i] when i < replacements.size() and the entry's
     * `active` flag is set. Shared subterms are rewritten once.
     */
    Expr substitute(const std::vector<Expr> &replacements,
                    const std::vector<bool> &active) const;

    /** Number of distinct non-leaf nodes (a size measure for tests). */
    std::size_t opCount() const;

    /** Render as an S-expression-ish string for diagnostics and tests. */
    std::string str() const;

    friend Expr operator+(const Expr &a, const Expr &b);
    friend Expr operator-(const Expr &a, const Expr &b);
    friend Expr operator*(const Expr &a, const Expr &b);
    friend Expr operator/(const Expr &a, const Expr &b);
    friend Expr operator-(const Expr &a);
    friend Expr pow(const Expr &a, int exponent);
    friend Expr sin(const Expr &a);
    friend Expr cos(const Expr &a);
    friend Expr tan(const Expr &a);
    friend Expr asin(const Expr &a);
    friend Expr acos(const Expr &a);
    friend Expr atan(const Expr &a);
    friend Expr exp(const Expr &a);
    friend Expr sqrt(const Expr &a);
    friend Expr min(const Expr &a, const Expr &b);
    friend Expr max(const Expr &a, const Expr &b);

  private:
    explicit Expr(std::shared_ptr<const ExprNode> node)
        : node_(std::move(node)) {}

    static Expr makeUnary(Op op, const Expr &a);
    static Expr makeBinary(Op op, const Expr &a, const Expr &b);

    double evalNode(const ExprNode *n,
                    const std::vector<double> &env,
                    std::unordered_map<const ExprNode *, double> &memo) const;
    Expr diffNode(const ExprNode *n, int var_id,
                  std::unordered_map<const ExprNode *, Expr> &memo) const;
    Expr substNode(const ExprNode *n,
                   const std::vector<Expr> &replacements,
                   const std::vector<bool> &active,
                   std::unordered_map<const ExprNode *, Expr> &memo) const;

    std::shared_ptr<const ExprNode> node_;
};

Expr operator+(const Expr &a, const Expr &b);
Expr operator-(const Expr &a, const Expr &b);
Expr operator*(const Expr &a, const Expr &b);
Expr operator/(const Expr &a, const Expr &b);
Expr operator-(const Expr &a);
Expr pow(const Expr &a, int exponent);
Expr sin(const Expr &a);
Expr cos(const Expr &a);
Expr tan(const Expr &a);
Expr asin(const Expr &a);
Expr acos(const Expr &a);
Expr atan(const Expr &a);
Expr exp(const Expr &a);
Expr sqrt(const Expr &a);
Expr min(const Expr &a, const Expr &b);
Expr max(const Expr &a, const Expr &b);

} // namespace robox::sym

#endif // ROBOX_SYM_EXPR_HH
