/**
 * @file
 * Derivative convenience API over the symbolic engine.
 *
 * The Program Translator uses automatic differentiation to compute
 * "all necessary gradients" (Sec. VII); these helpers package the
 * common shapes — gradient vectors, Jacobian matrices, and (exact,
 * symmetric) Hessians — for library users building their own
 * formulations on top of robox::sym.
 */

#ifndef ROBOX_SYM_DERIVATIVES_HH
#define ROBOX_SYM_DERIVATIVES_HH

#include <vector>

#include "sym/expr.hh"

namespace robox::sym
{

/** Gradient of e with respect to the listed variables. */
std::vector<Expr> gradient(const Expr &e, const std::vector<int> &vars);

/**
 * Jacobian of a vector function: row-major, rows follow `exprs`,
 * columns follow `vars`.
 */
std::vector<Expr> jacobian(const std::vector<Expr> &exprs,
                           const std::vector<int> &vars);

/**
 * Exact second-derivative matrix of e (row-major, vars x vars). The
 * result is symmetric by construction: the upper triangle is computed
 * and mirrored.
 */
std::vector<Expr> hessian(const Expr &e, const std::vector<int> &vars);

/**
 * Numeric Gauss-Newton Hessian approximation sum_i w_i * J_i^T J_i of
 * a weighted residual vector at the given point: the structure the
 * translator's objective sum_i ||p_i||^2_{W_i} makes exact-in-shape.
 * Returns a row-major vars x vars matrix of doubles.
 */
std::vector<double> gaussNewton(const std::vector<Expr> &residuals,
                                const std::vector<double> &weights,
                                const std::vector<int> &vars,
                                const std::vector<double> &point);

} // namespace robox::sym

#endif // ROBOX_SYM_DERIVATIVES_HH
