/**
 * @file
 * Tape: a flattened, deduplicated op list compiled from expression DAGs.
 *
 * The Program Translator lowers every symbolic expression (dynamics,
 * penalties, constraints, and their derivatives) to a Tape. The tape is
 * the scalar-operation payload of the macro dataflow graph: each tape
 * instruction becomes a SCALAR M-DFG node, and the same tape drives both
 * the double-precision reference solver and the fixed-point accelerator
 * datapath, which keeps the two numerically comparable.
 */

#ifndef ROBOX_SYM_TAPE_HH
#define ROBOX_SYM_TAPE_HH

#include <vector>

#include "fixed/fixed.hh"
#include "fixed/fixed_math.hh"
#include "sym/expr.hh"

namespace robox::sym
{

/** Operation counts by category, consumed by the performance models. */
struct OpStats
{
    std::size_t addSub = 0;     //!< Additions and subtractions (incl. neg).
    std::size_t mul = 0;        //!< Multiplications (incl. expanded pow).
    std::size_t div = 0;        //!< Divisions.
    std::size_t nonlinear = 0;  //!< LUT-class operations (sin, exp, ...).

    std::size_t total() const { return addSub + mul + div + nonlinear; }
    OpStats &operator+=(const OpStats &o);
};

/**
 * A straight-line program computing a set of expression outputs from a
 * dense vector of variable values.
 *
 * Slot layout: slots [0, numVars) hold the inputs; following slots hold
 * constants (preloaded) and intermediate results. Identical shared
 * subexpressions occupy a single slot.
 */
class Tape
{
  public:
    /** One three-address instruction; dst is the instruction's slot. */
    struct Instr
    {
        Op op;          //!< Operation (never Const/Var).
        int dst;        //!< Destination slot.
        int a;          //!< First source slot.
        int b;          //!< Second source slot (-1 if unary).
        int ipow;       //!< Exponent for Op::Pow.
    };

    /** A constant preload: slot and value. */
    struct Preload
    {
        int slot;
        double value;
    };

    Tape() = default;

    /**
     * Compile the outputs into a tape.
     *
     * @param outputs Expressions to compute.
     * @param num_vars Size of the input environment; every variable id
     *        referenced by the outputs must be < num_vars.
     */
    Tape(const std::vector<Expr> &outputs, int num_vars);

    int numVars() const { return num_vars_; }
    int numSlots() const { return num_slots_; }
    const std::vector<Instr> &instrs() const { return instrs_; }
    const std::vector<Preload> &preloads() const { return preloads_; }
    /** Slot index of each output, aligned with the constructor input. */
    const std::vector<int> &outputSlots() const { return output_slots_; }

    /** Evaluate in double precision. */
    std::vector<double> eval(const std::vector<double> &inputs) const;

    /**
     * Evaluate in double precision into caller-owned buffers. work is
     * the slot scratch (resized to numSlots()), out receives one value
     * per output. Once both buffers have grown to their steady-state
     * capacity the call performs no heap allocation, which is what the
     * MPC solver's allocation-free hot path relies on.
     */
    void evalInto(const std::vector<double> &inputs,
                  std::vector<double> &work,
                  std::vector<double> &out) const;

    /**
     * Evaluate in Q14.17 fixed point, using LUT-backed nonlinear
     * functions — bit-compatible with the accelerator datapath.
     */
    std::vector<Fixed> evalFixed(const std::vector<Fixed> &inputs,
                                 const FixedMath &fm) const;

    /** Fixed-point analogue of evalInto. */
    void evalFixedInto(const std::vector<Fixed> &inputs,
                       const FixedMath &fm, std::vector<Fixed> &work,
                       std::vector<Fixed> &out) const;

    /** Operation counts by category. */
    OpStats stats() const;

  private:
    int num_vars_ = 0;
    int num_slots_ = 0;
    std::vector<Instr> instrs_;
    std::vector<Preload> preloads_;
    std::vector<int> output_slots_;
};

} // namespace robox::sym

#endif // ROBOX_SYM_TAPE_HH
