/**
 * @file
 * Implementation of tape compilation and execution.
 */

#include "sym/tape.hh"

#include <cmath>
#include <unordered_map>

#include "support/logging.hh"

namespace robox::sym
{

OpStats &
OpStats::operator+=(const OpStats &o)
{
    addSub += o.addSub;
    mul += o.mul;
    div += o.div;
    nonlinear += o.nonlinear;
    return *this;
}

namespace
{

/** Recursive, memoized lowering of one DAG node into tape slots. */
int
lowerNode(const Expr &e, int num_vars,
          std::unordered_map<const ExprNode *, int> &slot_of,
          std::unordered_map<double, int> &const_slot,
          std::vector<Tape::Instr> &instrs,
          std::vector<Tape::Preload> &preloads, int &next_slot)
{
    auto it = slot_of.find(e.id());
    if (it != slot_of.end())
        return it->second;

    int slot = -1;
    switch (e.op()) {
      case Op::Const: {
        auto cit = const_slot.find(e.value());
        if (cit != const_slot.end()) {
            slot = cit->second;
        } else {
            slot = next_slot++;
            preloads.push_back({slot, e.value()});
            const_slot.emplace(e.value(), slot);
        }
        break;
      }
      case Op::Var:
        if (e.varId() >= num_vars)
            panic("tape: variable id {} ('{}') >= declared count {}",
                  e.varId(), e.varName(), num_vars);
        slot = e.varId();
        break;
      case Op::Pow: {
        int a = lowerNode(e.left(), num_vars, slot_of, const_slot, instrs,
                          preloads, next_slot);
        slot = next_slot++;
        instrs.push_back({Op::Pow, slot, a, -1, e.ipow()});
        break;
      }
      default: {
        int a = lowerNode(e.left(), num_vars, slot_of, const_slot, instrs,
                          preloads, next_slot);
        int b = -1;
        if (isBinary(e.op()))
            b = lowerNode(e.right(), num_vars, slot_of, const_slot, instrs,
                          preloads, next_slot);
        slot = next_slot++;
        instrs.push_back({e.op(), slot, a, b, 0});
        break;
      }
    }
    slot_of.emplace(e.id(), slot);
    return slot;
}

} // namespace

Tape::Tape(const std::vector<Expr> &outputs, int num_vars)
    : num_vars_(num_vars)
{
    std::unordered_map<const ExprNode *, int> slot_of;
    std::unordered_map<double, int> const_slot;
    int next_slot = num_vars;
    output_slots_.reserve(outputs.size());
    for (const Expr &e : outputs)
        output_slots_.push_back(lowerNode(e, num_vars, slot_of, const_slot,
                                          instrs_, preloads_, next_slot));
    num_slots_ = next_slot;
}

std::vector<double>
Tape::eval(const std::vector<double> &inputs) const
{
    std::vector<double> work;
    std::vector<double> out;
    evalInto(inputs, work, out);
    return out;
}

void
Tape::evalInto(const std::vector<double> &inputs,
               std::vector<double> &work, std::vector<double> &out) const
{
    robox_assert(static_cast<int>(inputs.size()) == num_vars_);
    work.assign(num_slots_, 0.0);
    for (int i = 0; i < num_vars_; ++i)
        work[i] = inputs[i];
    for (const Preload &p : preloads_)
        work[p.slot] = p.value;
    for (const Instr &in : instrs_) {
        double a = work[in.a];
        switch (in.op) {
          case Op::Add: work[in.dst] = a + work[in.b]; break;
          case Op::Sub: work[in.dst] = a - work[in.b]; break;
          case Op::Mul: work[in.dst] = a * work[in.b]; break;
          case Op::Div: work[in.dst] = a / work[in.b]; break;
          case Op::Min: work[in.dst] = std::fmin(a, work[in.b]); break;
          case Op::Max: work[in.dst] = std::fmax(a, work[in.b]); break;
          case Op::Neg: work[in.dst] = -a; break;
          case Op::Pow: work[in.dst] = std::pow(a, in.ipow); break;
          case Op::Sin: work[in.dst] = std::sin(a); break;
          case Op::Cos: work[in.dst] = std::cos(a); break;
          case Op::Tan: work[in.dst] = std::tan(a); break;
          case Op::Asin: work[in.dst] = std::asin(a); break;
          case Op::Acos: work[in.dst] = std::acos(a); break;
          case Op::Atan: work[in.dst] = std::atan(a); break;
          case Op::Exp: work[in.dst] = std::exp(a); break;
          case Op::Sqrt: work[in.dst] = std::sqrt(a); break;
          default: panic("tape eval: bad op {}", opName(in.op));
        }
    }
    out.resize(output_slots_.size());
    for (std::size_t i = 0; i < output_slots_.size(); ++i)
        out[i] = work[output_slots_[i]];
}

std::vector<Fixed>
Tape::evalFixed(const std::vector<Fixed> &inputs, const FixedMath &fm) const
{
    std::vector<Fixed> work;
    std::vector<Fixed> out;
    evalFixedInto(inputs, fm, work, out);
    return out;
}

void
Tape::evalFixedInto(const std::vector<Fixed> &inputs, const FixedMath &fm,
                    std::vector<Fixed> &work,
                    std::vector<Fixed> &out) const
{
    robox_assert(static_cast<int>(inputs.size()) == num_vars_);
    work.assign(num_slots_, Fixed());
    for (int i = 0; i < num_vars_; ++i)
        work[i] = inputs[i];
    for (const Preload &p : preloads_)
        work[p.slot] = Fixed::fromDouble(p.value);
    for (const Instr &in : instrs_) {
        Fixed a = work[in.a];
        switch (in.op) {
          case Op::Add: work[in.dst] = a + work[in.b]; break;
          case Op::Sub: work[in.dst] = a - work[in.b]; break;
          case Op::Mul: work[in.dst] = a * work[in.b]; break;
          case Op::Div: work[in.dst] = a / work[in.b]; break;
          case Op::Min:
            work[in.dst] = a < work[in.b] ? a : work[in.b];
            break;
          case Op::Max:
            work[in.dst] = a > work[in.b] ? a : work[in.b];
            break;
          case Op::Neg: work[in.dst] = -a; break;
          case Op::Pow: {
            // Hardware expands small integer powers into multiplies.
            int e = in.ipow < 0 ? -in.ipow : in.ipow;
            Fixed acc = Fixed::fromDouble(1.0);
            for (int i = 0; i < e; ++i)
                acc *= a;
            if (in.ipow < 0)
                acc = Fixed::fromDouble(1.0) / acc;
            work[in.dst] = acc;
            break;
          }
          case Op::Sin: work[in.dst] = fm.sin(a); break;
          case Op::Cos: work[in.dst] = fm.cos(a); break;
          case Op::Tan: work[in.dst] = fm.tan(a); break;
          case Op::Asin: work[in.dst] = fm.asin(a); break;
          case Op::Acos: work[in.dst] = fm.acos(a); break;
          case Op::Atan: work[in.dst] = fm.atan(a); break;
          case Op::Exp: work[in.dst] = fm.exp(a); break;
          case Op::Sqrt: work[in.dst] = fm.sqrt(a); break;
          default: panic("tape evalFixed: bad op {}", opName(in.op));
        }
    }
    out.resize(output_slots_.size());
    for (std::size_t i = 0; i < output_slots_.size(); ++i)
        out[i] = work[output_slots_[i]];
}

OpStats
Tape::stats() const
{
    OpStats s;
    for (const Instr &in : instrs_) {
        switch (in.op) {
          case Op::Add:
          case Op::Sub:
          case Op::Neg:
          case Op::Min:
          case Op::Max:
            ++s.addSub;
            break;
          case Op::Mul:
            ++s.mul;
            break;
          case Op::Pow:
            s.mul += static_cast<std::size_t>(
                in.ipow < 0 ? -in.ipow : in.ipow);
            if (in.ipow < 0)
                ++s.div;
            break;
          case Op::Div:
            ++s.div;
            break;
          default:
            ++s.nonlinear;
            break;
        }
    }
    return s;
}

} // namespace robox::sym
