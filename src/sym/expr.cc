/**
 * @file
 * Implementation of the symbolic expression DAG, including the local
 * simplifier, the memoized evaluator, and symbolic differentiation.
 */

#include "sym/expr.hh"

#include <cmath>
#include <set>
#include <sstream>

#include "support/logging.hh"

namespace robox::sym
{

bool
isUnary(Op op)
{
    switch (op) {
      case Op::Neg:
      case Op::Sin:
      case Op::Cos:
      case Op::Tan:
      case Op::Asin:
      case Op::Acos:
      case Op::Atan:
      case Op::Exp:
      case Op::Sqrt:
        return true;
      default:
        return false;
    }
}

bool
isBinary(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Min:
      case Op::Max:
        return true;
      default:
        return false;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Var: return "var";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Neg: return "neg";
      case Op::Pow: return "pow";
      case Op::Sin: return "sin";
      case Op::Cos: return "cos";
      case Op::Tan: return "tan";
      case Op::Asin: return "asin";
      case Op::Acos: return "acos";
      case Op::Atan: return "atan";
      case Op::Exp: return "exp";
      case Op::Sqrt: return "sqrt";
      case Op::Min: return "min";
      case Op::Max: return "max";
    }
    return "?";
}

namespace
{

std::shared_ptr<const ExprNode>
makeConstNode(double v)
{
    auto n = std::make_shared<ExprNode>();
    n->op = Op::Const;
    n->value = v;
    return n;
}

/** Evaluate a unary operation in double precision. */
double
applyUnary(Op op, double x)
{
    switch (op) {
      case Op::Neg: return -x;
      case Op::Sin: return std::sin(x);
      case Op::Cos: return std::cos(x);
      case Op::Tan: return std::tan(x);
      case Op::Asin: return std::asin(x);
      case Op::Acos: return std::acos(x);
      case Op::Atan: return std::atan(x);
      case Op::Exp: return std::exp(x);
      case Op::Sqrt: return std::sqrt(x);
      default: panic("applyUnary: bad op {}", opName(op));
    }
}

/** Evaluate a binary operation in double precision. */
double
applyBinary(Op op, double x, double y)
{
    switch (op) {
      case Op::Add: return x + y;
      case Op::Sub: return x - y;
      case Op::Mul: return x * y;
      case Op::Div: return x / y;
      case Op::Min: return std::fmin(x, y);
      case Op::Max: return std::fmax(x, y);
      default: panic("applyBinary: bad op {}", opName(op));
    }
}

} // namespace

Expr::Expr() : node_(makeConstNode(0.0)) {}

Expr::Expr(double value) : node_(makeConstNode(value)) {}

Expr
Expr::variable(int var_id, std::string name)
{
    robox_assert(var_id >= 0);
    auto n = std::make_shared<ExprNode>();
    n->op = Op::Var;
    n->varId = var_id;
    n->varName = std::move(name);
    return Expr(std::move(n));
}

Expr
Expr::left() const
{
    robox_assert(node_->a != nullptr);
    return Expr(node_->a);
}

Expr
Expr::right() const
{
    robox_assert(node_->b != nullptr);
    return Expr(node_->b);
}

Expr
Expr::makeUnary(Op op, const Expr &a)
{
    if (a.isConst())
        return Expr(applyUnary(op, a.value()));
    if (op == Op::Neg && a.op() == Op::Neg)
        return a.left();
    auto n = std::make_shared<ExprNode>();
    n->op = op;
    n->a = a.node_;
    return Expr(std::move(n));
}

Expr
Expr::makeBinary(Op op, const Expr &a, const Expr &b)
{
    if (a.isConst() && b.isConst())
        return Expr(applyBinary(op, a.value(), b.value()));
    switch (op) {
      case Op::Add:
        if (a.isConst(0.0))
            return b;
        if (b.isConst(0.0))
            return a;
        break;
      case Op::Sub:
        if (b.isConst(0.0))
            return a;
        if (a.isConst(0.0))
            return makeUnary(Op::Neg, b);
        if (a.id() == b.id())
            return Expr(0.0);
        break;
      case Op::Mul:
        if (a.isConst(0.0) || b.isConst(0.0))
            return Expr(0.0);
        if (a.isConst(1.0))
            return b;
        if (b.isConst(1.0))
            return a;
        if (a.isConst(-1.0))
            return makeUnary(Op::Neg, b);
        if (b.isConst(-1.0))
            return makeUnary(Op::Neg, a);
        break;
      case Op::Div:
        if (a.isConst(0.0))
            return Expr(0.0);
        if (b.isConst(1.0))
            return a;
        if (b.isConst(-1.0))
            return makeUnary(Op::Neg, a);
        break;
      case Op::Min:
      case Op::Max:
        if (a.id() == b.id())
            return a;
        break;
      default:
        panic("makeBinary: bad op {}", opName(op));
    }
    auto n = std::make_shared<ExprNode>();
    n->op = op;
    n->a = a.node_;
    n->b = b.node_;
    return Expr(std::move(n));
}

Expr
operator+(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Add, a, b);
}

Expr
operator-(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Sub, a, b);
}

Expr
operator*(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Mul, a, b);
}

Expr
operator/(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Div, a, b);
}

Expr
operator-(const Expr &a)
{
    return Expr::makeUnary(Op::Neg, a);
}

Expr
pow(const Expr &a, int exponent)
{
    if (exponent == 0)
        return Expr(1.0);
    if (exponent == 1)
        return a;
    if (a.isConst())
        return Expr(std::pow(a.value(), exponent));
    auto n = std::make_shared<ExprNode>();
    n->op = Op::Pow;
    n->ipow = exponent;
    n->a = a.node_;
    return Expr(std::move(n));
}

Expr sin(const Expr &a) { return Expr::makeUnary(Op::Sin, a); }
Expr cos(const Expr &a) { return Expr::makeUnary(Op::Cos, a); }
Expr tan(const Expr &a) { return Expr::makeUnary(Op::Tan, a); }
Expr asin(const Expr &a) { return Expr::makeUnary(Op::Asin, a); }
Expr acos(const Expr &a) { return Expr::makeUnary(Op::Acos, a); }
Expr atan(const Expr &a) { return Expr::makeUnary(Op::Atan, a); }
Expr exp(const Expr &a) { return Expr::makeUnary(Op::Exp, a); }
Expr sqrt(const Expr &a) { return Expr::makeUnary(Op::Sqrt, a); }

Expr
min(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Min, a, b);
}

Expr
max(const Expr &a, const Expr &b)
{
    return Expr::makeBinary(Op::Max, a, b);
}

double
Expr::evalNode(const ExprNode *n, const std::vector<double> &env,
               std::unordered_map<const ExprNode *, double> &memo) const
{
    auto it = memo.find(n);
    if (it != memo.end())
        return it->second;
    double result = 0.0;
    switch (n->op) {
      case Op::Const:
        result = n->value;
        break;
      case Op::Var:
        if (static_cast<std::size_t>(n->varId) >= env.size())
            panic("eval: variable id {} ('{}') outside environment of "
                  "size {}", n->varId, n->varName, env.size());
        result = env[n->varId];
        break;
      case Op::Pow:
        result = std::pow(evalNode(n->a.get(), env, memo), n->ipow);
        break;
      default:
        if (isUnary(n->op)) {
            result = applyUnary(n->op, evalNode(n->a.get(), env, memo));
        } else {
            result = applyBinary(n->op, evalNode(n->a.get(), env, memo),
                                 evalNode(n->b.get(), env, memo));
        }
        break;
    }
    memo.emplace(n, result);
    return result;
}

double
Expr::eval(const std::vector<double> &env) const
{
    std::unordered_map<const ExprNode *, double> memo;
    return evalNode(node_.get(), env, memo);
}

Expr
Expr::diffNode(const ExprNode *n, int var_id,
               std::unordered_map<const ExprNode *, Expr> &memo) const
{
    auto it = memo.find(n);
    if (it != memo.end())
        return it->second;

    Expr result;
    switch (n->op) {
      case Op::Const:
        result = Expr(0.0);
        break;
      case Op::Var:
        result = Expr(n->varId == var_id ? 1.0 : 0.0);
        break;
      case Op::Add:
        result = diffNode(n->a.get(), var_id, memo) +
                 diffNode(n->b.get(), var_id, memo);
        break;
      case Op::Sub:
        result = diffNode(n->a.get(), var_id, memo) -
                 diffNode(n->b.get(), var_id, memo);
        break;
      case Op::Mul: {
        Expr a(n->a);
        Expr b(n->b);
        result = diffNode(n->a.get(), var_id, memo) * b +
                 a * diffNode(n->b.get(), var_id, memo);
        break;
      }
      case Op::Div: {
        Expr a(n->a);
        Expr b(n->b);
        Expr da = diffNode(n->a.get(), var_id, memo);
        Expr db = diffNode(n->b.get(), var_id, memo);
        result = (da * b - a * db) / (b * b);
        break;
      }
      case Op::Neg:
        result = -diffNode(n->a.get(), var_id, memo);
        break;
      case Op::Pow: {
        Expr a(n->a);
        Expr da = diffNode(n->a.get(), var_id, memo);
        result = Expr(static_cast<double>(n->ipow)) *
                 pow(a, n->ipow - 1) * da;
        break;
      }
      case Op::Sin: {
        Expr a(n->a);
        result = cos(a) * diffNode(n->a.get(), var_id, memo);
        break;
      }
      case Op::Cos: {
        Expr a(n->a);
        result = -sin(a) * diffNode(n->a.get(), var_id, memo);
        break;
      }
      case Op::Tan: {
        Expr a(n->a);
        Expr c = cos(a);
        result = diffNode(n->a.get(), var_id, memo) / (c * c);
        break;
      }
      case Op::Asin: {
        Expr a(n->a);
        result = diffNode(n->a.get(), var_id, memo) /
                 sqrt(Expr(1.0) - a * a);
        break;
      }
      case Op::Acos: {
        Expr a(n->a);
        result = -diffNode(n->a.get(), var_id, memo) /
                 sqrt(Expr(1.0) - a * a);
        break;
      }
      case Op::Atan: {
        Expr a(n->a);
        result = diffNode(n->a.get(), var_id, memo) /
                 (Expr(1.0) + a * a);
        break;
      }
      case Op::Exp: {
        Expr a(n->a);
        result = exp(a) * diffNode(n->a.get(), var_id, memo);
        break;
      }
      case Op::Sqrt: {
        Expr a(n->a);
        result = diffNode(n->a.get(), var_id, memo) /
                 (Expr(2.0) * sqrt(a));
        break;
      }
      case Op::Min:
      case Op::Max:
        fatal("cannot differentiate {}: min/max may only appear in "
              "imperative (non-differentiated) expressions", opName(n->op));
    }
    memo.emplace(n, result);
    return result;
}

Expr
Expr::diff(int var_id) const
{
    std::unordered_map<const ExprNode *, Expr> memo;
    return diffNode(node_.get(), var_id, memo);
}

Expr
Expr::substNode(const ExprNode *n, const std::vector<Expr> &replacements,
                const std::vector<bool> &active,
                std::unordered_map<const ExprNode *, Expr> &memo) const
{
    auto it = memo.find(n);
    if (it != memo.end())
        return it->second;
    Expr result;
    switch (n->op) {
      case Op::Const:
        result = Expr(n->value);
        break;
      case Op::Var:
        if (static_cast<std::size_t>(n->varId) < active.size() &&
            active[n->varId]) {
            result = replacements[n->varId];
        } else {
            result = Expr::variable(n->varId, n->varName);
        }
        break;
      case Op::Pow:
        result = pow(substNode(n->a.get(), replacements, active, memo),
                     n->ipow);
        break;
      default:
        if (isUnary(n->op)) {
            result = makeUnary(
                n->op, substNode(n->a.get(), replacements, active, memo));
        } else {
            result = makeBinary(
                n->op, substNode(n->a.get(), replacements, active, memo),
                substNode(n->b.get(), replacements, active, memo));
        }
        break;
    }
    memo.emplace(n, result);
    return result;
}

Expr
Expr::substitute(const std::vector<Expr> &replacements,
                 const std::vector<bool> &active) const
{
    robox_assert(replacements.size() == active.size());
    std::unordered_map<const ExprNode *, Expr> memo;
    return substNode(node_.get(), replacements, active, memo);
}

std::vector<int>
Expr::variables() const
{
    std::set<int> ids;
    std::vector<const ExprNode *> stack{node_.get()};
    std::set<const ExprNode *> seen;
    while (!stack.empty()) {
        const ExprNode *n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second)
            continue;
        if (n->op == Op::Var)
            ids.insert(n->varId);
        if (n->a)
            stack.push_back(n->a.get());
        if (n->b)
            stack.push_back(n->b.get());
    }
    return {ids.begin(), ids.end()};
}

std::size_t
Expr::opCount() const
{
    std::size_t count = 0;
    std::vector<const ExprNode *> stack{node_.get()};
    std::set<const ExprNode *> seen;
    while (!stack.empty()) {
        const ExprNode *n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second)
            continue;
        if (n->op != Op::Const && n->op != Op::Var)
            ++count;
        if (n->a)
            stack.push_back(n->a.get());
        if (n->b)
            stack.push_back(n->b.get());
    }
    return count;
}

namespace
{

void
strNode(const ExprNode *n, std::ostringstream &os)
{
    switch (n->op) {
      case Op::Const:
        os << n->value;
        return;
      case Op::Var:
        os << n->varName;
        return;
      case Op::Pow:
        os << "(pow ";
        strNode(n->a.get(), os);
        os << " " << n->ipow << ")";
        return;
      default:
        os << "(" << opName(n->op) << " ";
        strNode(n->a.get(), os);
        if (n->b) {
            os << " ";
            strNode(n->b.get(), os);
        }
        os << ")";
        return;
    }
}

} // namespace

std::string
Expr::str() const
{
    std::ostringstream os;
    strNode(node_.get(), os);
    return os.str();
}

} // namespace robox::sym
