/**
 * @file
 * Implementation of the derivative convenience API.
 */

#include "sym/derivatives.hh"

#include "support/logging.hh"

namespace robox::sym
{

std::vector<Expr>
gradient(const Expr &e, const std::vector<int> &vars)
{
    std::vector<Expr> out;
    out.reserve(vars.size());
    for (int v : vars)
        out.push_back(e.diff(v));
    return out;
}

std::vector<Expr>
jacobian(const std::vector<Expr> &exprs, const std::vector<int> &vars)
{
    std::vector<Expr> out;
    out.reserve(exprs.size() * vars.size());
    for (const Expr &e : exprs)
        for (int v : vars)
            out.push_back(e.diff(v));
    return out;
}

std::vector<Expr>
hessian(const Expr &e, const std::vector<int> &vars)
{
    const std::size_t n = vars.size();
    std::vector<Expr> out(n * n);
    std::vector<Expr> grad = gradient(e, vars);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            Expr second = grad[i].diff(vars[j]);
            out[i * n + j] = second;
            out[j * n + i] = second;
        }
    }
    return out;
}

std::vector<double>
gaussNewton(const std::vector<Expr> &residuals,
            const std::vector<double> &weights,
            const std::vector<int> &vars,
            const std::vector<double> &point)
{
    robox_assert(residuals.size() == weights.size());
    const std::size_t n = vars.size();
    std::vector<double> out(n * n, 0.0);
    std::vector<double> row(n);
    for (std::size_t r = 0; r < residuals.size(); ++r) {
        for (std::size_t j = 0; j < n; ++j)
            row[j] = residuals[r].diff(vars[j]).eval(point);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                out[i * n + j] += 2.0 * weights[r] * row[i] * row[j];
    }
    return out;
}

} // namespace robox::sym
