/**
 * @file
 * Analytic performance/power models of the five baseline platforms
 * (Table IV): ARM Cortex A57, Intel Xeon E3-1246 v3, Nvidia Tegra X2,
 * GTX 650 Ti, and Tesla K40.
 *
 * The paper measured wall-clock time of ACADO/HPMPC (CPUs) and a
 * custom cuBLAS solver (GPUs) on real hardware; that hardware is not
 * available here, so each platform is modeled with a roofline-style
 * estimate driven by the *measured* operation and byte counts of our
 * own solver: an Amdahl split between the serial Riccati recursion and
 * the stage-parallel work, an effective-utilization factor for the
 * platform's peak FLOP rate on small-matrix MPC kernels, a last-level
 * cache capacity test that switches the memory term between cache and
 * DRAM bandwidth, and (for GPUs) a per-solver-iteration kernel-launch
 * overhead. The utilization constants are calibration parameters,
 * chosen so the model reproduces the paper's measured baseline
 * ordering and magnitudes (Sec. VIII-B); they are documented in
 * DESIGN.md as substitutions.
 */

#ifndef ROBOX_PERFMODEL_PLATFORMS_HH
#define ROBOX_PERFMODEL_PLATFORMS_HH

#include <string>
#include <vector>

namespace robox::perfmodel
{

/** Hardware and calibration parameters of one baseline platform. */
struct PlatformSpec
{
    std::string name;
    bool isGpu = false;

    int cores = 1;              //!< CPU cores or CUDA cores.
    double clockGhz = 1.0;
    double flopsPerCyclePerCore = 2.0; //!< SIMD/FMA width per core.

    /**
     * Effective utilization of peak FLOPs on the MPC workload: covers
     * dependency stalls in the Riccati chain, short-vector overheads,
     * and (for GPUs) low occupancy on stage-sized matrices. Calibrated.
     */
    double utilization = 0.1;

    /**
     * Fraction of additional cores usable beyond the first: the
     * stagewise solver parallelizes the tape/assembly phases but not
     * the backward recursion.
     */
    double multicoreScaling = 0.2;

    double dramBandwidthGBs = 12.0; //!< Sustained DRAM bandwidth.
    double cacheMb = 2.0;           //!< Last-level cache capacity.
    double launchOverheadUs = 0.0;  //!< Per solver-iteration overhead.
    /** GPU-only: synchronization cost per Riccati stage step, which is
     *  what makes small-matrix MPC hostile to GPUs. */
    double syncPerStageUs = 0.0;
    /** CPU-only: compute-throughput multiplier applied once the working
     *  set spills the last-level cache. */
    double cacheDegradation = 1.0;
    double busyPowerWatts = 10.0;   //!< Power under the MPC load.

    /** Effective GFLOP/s for the parallel portion of the workload. */
    double parallelGflops() const;
    /** Effective GFLOP/s for the serial (single-lane) portion. */
    double serialGflops() const;
};

/** The MPC workload profile driving the models. */
struct WorkloadProfile
{
    double flopsPerIteration = 0.0;  //!< Scalar ops per IPM iteration.
    double serialFraction = 0.2;     //!< Riccati share of the flops.
    double bytesPerIteration = 0.0;  //!< Working-set traffic (8 B/word).
    double workingSetBytes = 0.0;    //!< Resident set for cache test.
    int horizon = 1;                 //!< Stages (GPU sync count).
    int iterations = 1;              //!< IPM iterations per invocation.
};

/** Predicted seconds per controller invocation. */
double predictSeconds(const PlatformSpec &platform,
                      const WorkloadProfile &workload);

/** Predicted energy per controller invocation (J). */
double predictJoules(const PlatformSpec &platform,
                     const WorkloadProfile &workload);

/** Baseline platform catalog (Table IV). */
const PlatformSpec &armA57();
const PlatformSpec &xeonE3();
const PlatformSpec &tegraX2();
const PlatformSpec &gtx650Ti();
const PlatformSpec &teslaK40();
/** All five baselines in Table IV order. */
const std::vector<PlatformSpec> &allPlatforms();

} // namespace robox::perfmodel

#endif // ROBOX_PERFMODEL_PLATFORMS_HH
