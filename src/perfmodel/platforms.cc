/**
 * @file
 * Implementation of the baseline platform models.
 */

#include "perfmodel/platforms.hh"

#include <algorithm>

#include "support/logging.hh"

namespace robox::perfmodel
{

double
PlatformSpec::parallelGflops() const
{
    double lanes = 1.0 + multicoreScaling * (cores - 1);
    return lanes * clockGhz * flopsPerCyclePerCore * utilization;
}

double
PlatformSpec::serialGflops() const
{
    // GPUs execute the serial recursion at single-lane throughput,
    // which is what makes small-horizon MPC hostile to them.
    return clockGhz * flopsPerCyclePerCore * utilization;
}

double
predictSeconds(const PlatformSpec &platform,
               const WorkloadProfile &workload)
{
    double cache_bytes = platform.cacheMb * 1024.0 * 1024.0;
    // Fraction of the working set that overflows the last-level cache;
    // the penalty phases in gradually as the resident set grows.
    double spill_fraction =
        workload.workingSetBytes > cache_bytes
            ? (workload.workingSetBytes - cache_bytes) /
                  workload.workingSetBytes
            : 0.0;

    double eff_gflops = platform.parallelGflops();
    if (!platform.isGpu) {
        eff_gflops *= 1.0 - spill_fraction *
                                (1.0 - platform.cacheDegradation);
    }

    double compute_s =
        workload.flopsPerIteration / (eff_gflops * 1e9);

    // Memory: only the overflowing share of the traffic hits DRAM.
    double memory_s = spill_fraction * workload.bytesPerIteration /
                      (platform.dramBandwidthGBs * 1e9);

    // GPUs additionally pay a synchronization cost for every serial
    // Riccati stage step plus a per-iteration launch overhead.
    double overhead_s = 0.0;
    if (platform.isGpu) {
        overhead_s = (platform.syncPerStageUs * workload.horizon +
                      platform.launchOverheadUs) *
                     1e-6;
    }

    double per_iteration = std::max(compute_s, memory_s) + overhead_s;
    return workload.iterations * per_iteration;
}

double
predictJoules(const PlatformSpec &platform,
              const WorkloadProfile &workload)
{
    return predictSeconds(platform, workload) * platform.busyPowerWatts;
}

namespace
{

PlatformSpec
makeArmA57()
{
    PlatformSpec p;
    p.name = "ARM Cortex A57";
    p.cores = 4;
    p.clockGhz = 2.0;
    p.flopsPerCyclePerCore = 4.0; // 2x64-bit NEON FMA.
    p.utilization = 0.0215;
    p.multicoreScaling = 0.25;
    p.dramBandwidthGBs = 12.0;
    p.cacheMb = 2.0;
    p.cacheDegradation = 0.42;
    p.busyPowerWatts = 2.5;
    return p;
}

PlatformSpec
makeXeonE3()
{
    PlatformSpec p;
    p.name = "Intel Xeon E3";
    p.cores = 4;
    p.clockGhz = 3.6;
    p.flopsPerCyclePerCore = 16.0; // AVX2 FMA, 4x64-bit, 2 ports.
    p.utilization = 0.0111;
    p.multicoreScaling = 0.30; // SMT helps the stage-parallel phases.
    p.dramBandwidthGBs = 21.0;
    p.cacheMb = 8.0;
    p.cacheDegradation = 0.5;
    p.busyPowerWatts = 36.0;
    return p;
}

PlatformSpec
makeTegraX2()
{
    PlatformSpec p;
    p.name = "Tegra X2";
    p.isGpu = true;
    p.cores = 256;
    p.clockGhz = 0.854;
    p.flopsPerCyclePerCore = 2.0;
    p.utilization = 0.0069;
    p.multicoreScaling = 1.0; // Occupancy is folded into utilization.
    p.dramBandwidthGBs = 40.0;
    p.cacheMb = 2.0;
    p.launchOverheadUs = 1.5;
    p.syncPerStageUs = 0.1;
    p.busyPowerWatts = 7.5;
    return p;
}

PlatformSpec
makeGtx650Ti()
{
    PlatformSpec p;
    p.name = "GTX 650 Ti";
    p.isGpu = true;
    p.cores = 768;
    p.clockGhz = 0.928;
    p.flopsPerCyclePerCore = 2.0;
    p.utilization = 0.0048;
    p.multicoreScaling = 1.0;
    p.dramBandwidthGBs = 80.0;
    p.cacheMb = 1.0;
    p.launchOverheadUs = 1.5;
    p.syncPerStageUs = 0.1;
    p.busyPowerWatts = 110.0;
    return p;
}

PlatformSpec
makeTeslaK40()
{
    PlatformSpec p;
    p.name = "Tesla K40";
    p.isGpu = true;
    p.cores = 2880;
    p.clockGhz = 0.875;
    p.flopsPerCyclePerCore = 2.0;
    p.utilization = 0.008;
    p.multicoreScaling = 1.0;
    p.dramBandwidthGBs = 230.0;
    p.cacheMb = 1.5;
    p.launchOverheadUs = 1.5;
    p.syncPerStageUs = 0.1;
    p.busyPowerWatts = 235.0;
    return p;
}

} // namespace

const PlatformSpec &
armA57()
{
    static const PlatformSpec p = makeArmA57();
    return p;
}

const PlatformSpec &
xeonE3()
{
    static const PlatformSpec p = makeXeonE3();
    return p;
}

const PlatformSpec &
tegraX2()
{
    static const PlatformSpec p = makeTegraX2();
    return p;
}

const PlatformSpec &
gtx650Ti()
{
    static const PlatformSpec p = makeGtx650Ti();
    return p;
}

const PlatformSpec &
teslaK40()
{
    static const PlatformSpec p = makeTeslaK40();
    return p;
}

const std::vector<PlatformSpec> &
allPlatforms()
{
    static const std::vector<PlatformSpec> list = {
        armA57(), xeonE3(), tegraX2(), gtx650Ti(), teslaK40(),
    };
    return list;
}

} // namespace robox::perfmodel
