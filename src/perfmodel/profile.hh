/**
 * @file
 * Workload profiling: extracts the operation/byte counts that drive the
 * baseline platform models from a compiled MPC problem.
 *
 * The profile comes from the same M-DFG the accelerator executes, so
 * the baselines and RoboX are compared on an identical workload: total
 * scalar-equivalent flops per solver iteration, the serial (Riccati)
 * fraction, and the per-iteration working-set traffic in doubles.
 */

#ifndef ROBOX_PERFMODEL_PROFILE_HH
#define ROBOX_PERFMODEL_PROFILE_HH

#include "mpc/problem.hh"
#include "perfmodel/platforms.hh"

namespace robox::perfmodel
{

/**
 * Profile one MPC problem.
 *
 * @param problem The compiled problem.
 * @param iterations IPM iterations per controller invocation (use the
 *        solver's measured count, or the benchmark default).
 * @param slice_stages Stage slice used to build the M-DFG (scaled back
 *        to the full horizon exactly, as in the accelerator flow).
 *        Clamped into [1, horizon]; non-positive values additionally
 *        trip a debug assertion.
 */
WorkloadProfile profileProblem(const mpc::MpcProblem &problem,
                               int iterations, int slice_stages = 32);

} // namespace robox::perfmodel

#endif // ROBOX_PERFMODEL_PROFILE_HH
