/**
 * @file
 * Implementation of MPC workload profiling.
 */

#include "perfmodel/profile.hh"

#include <algorithm>

#include "translator/workload.hh"

namespace robox::perfmodel
{

WorkloadProfile
profileProblem(const mpc::MpcProblem &problem, int iterations,
               int slice_stages)
{
    int slice = std::min(problem.horizon(), slice_stages);
    translator::Workload wl =
        translator::buildSolverIteration(problem, slice);
    mdfg::GraphStats stats = wl.graph.stats();

    double scale = static_cast<double>(problem.horizon()) / slice;

    WorkloadProfile profile;
    profile.iterations = iterations;
    profile.horizon = problem.horizon();
    profile.flopsPerIteration = stats.totalOps * scale;

    std::size_t serial_ops =
        stats.opsPerPhase[static_cast<int>(mdfg::Phase::Factor)] +
        stats.opsPerPhase[static_cast<int>(mdfg::Phase::Rollout)];
    profile.serialFraction =
        stats.totalOps ? static_cast<double>(serial_ops) / stats.totalOps
                       : 0.0;

    // Baselines run in double precision: 8 bytes per word, and the
    // stage intermediates are written once and read once per iteration.
    double ws_bytes_double = 2.0 * wl.bytesWorkingSetPerStage;
    profile.workingSetBytes = ws_bytes_double * problem.horizon();
    profile.bytesPerIteration = 2.0 * profile.workingSetBytes;

    return profile;
}

} // namespace robox::perfmodel
