/**
 * @file
 * Implementation of MPC workload profiling.
 */

#include "perfmodel/profile.hh"

#include <algorithm>

#include "support/logging.hh"
#include "translator/workload.hh"

namespace robox::perfmodel
{

WorkloadProfile
profileProblem(const mpc::MpcProblem &problem, int iterations,
               int slice_stages)
{
    // A non-positive slice would build an empty M-DFG and then divide
    // by zero in the horizon rescale below. Catch it loudly in debug
    // builds and clamp into [1, horizon] in release builds.
    robox_assert_dbg(slice_stages > 0);
    int slice = std::clamp(slice_stages, 1, problem.horizon());
    translator::Workload wl =
        translator::buildSolverIteration(problem, slice);
    mdfg::GraphStats stats = wl.graph.stats();

    double scale = static_cast<double>(problem.horizon()) / slice;

    WorkloadProfile profile;
    profile.iterations = iterations;
    profile.horizon = problem.horizon();
    profile.flopsPerIteration = stats.totalOps * scale;

    std::size_t serial_ops =
        stats.opsPerPhase[static_cast<int>(mdfg::Phase::Factor)] +
        stats.opsPerPhase[static_cast<int>(mdfg::Phase::Rollout)];
    profile.serialFraction =
        stats.totalOps ? static_cast<double>(serial_ops) / stats.totalOps
                       : 0.0;

    // Baselines run in double precision: 8 bytes per word, and the
    // stage intermediates are written once and read once per iteration.
    double ws_bytes_double = 2.0 * wl.bytesWorkingSetPerStage;
    profile.workingSetBytes = ws_bytes_double * problem.horizon();
    profile.bytesPerIteration = 2.0 * profile.workingSetBytes;

    return profile;
}

} // namespace robox::perfmodel
