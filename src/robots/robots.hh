/**
 * @file
 * The six benchmark robot systems of Table III, written in the RoboX
 * DSL: MobileRobot (trajectory tracking), Manipulator (reaching),
 * AutoVehicle (high-speed racing), MicroSat (orbit control), Quadrotor
 * (motion planning), and Hexacopter (attitude control).
 *
 * Each benchmark carries its DSL program, recommended solver
 * meta-parameters, a representative initial state and reference, and
 * the Table III model/task parameter counts it must reproduce.
 */

#ifndef ROBOX_ROBOTS_ROBOTS_HH
#define ROBOX_ROBOTS_ROBOTS_HH

#include <string>
#include <vector>

#include "dsl/model_spec.hh"
#include "linalg/matrix.hh"
#include "mpc/options.hh"

namespace robox::robots
{

/** One benchmark: DSL program plus evaluation metadata. */
struct Benchmark
{
    std::string name;        //!< System name, e.g. "MobileRobot".
    std::string taskLabel;   //!< Table III task, e.g. "Trajectory Tracking".
    std::string source;      //!< Complete RoboX DSL program.
    mpc::MpcOptions options; //!< Recommended solver meta-parameters.
    Vector initialState;     //!< Representative initial condition.
    Vector reference;        //!< Representative reference values.

    // Expected Table III parameters.
    int expStates = 0;
    int expInputs = 0;
    int expPenalties = 0;
    int expConstraints = 0;
};

/** All six benchmarks in Table III order. */
const std::vector<Benchmark> &allBenchmarks();

/** Look up a benchmark by system name; fatal() if unknown. */
const Benchmark &benchmark(const std::string &name);

/** Analyze a benchmark's DSL program into a ModelSpec. */
dsl::ModelSpec analyzeBenchmark(const Benchmark &bench);

/**
 * The Table III "Constraints" count of a model: constrained variables
 * (states/inputs with at least one finite bound) plus task constraint
 * terms.
 */
int tableConstraintCount(const dsl::ModelSpec &model);

} // namespace robox::robots

#endif // ROBOX_ROBOTS_ROBOTS_HH
