/**
 * @file
 * DSL programs and metadata for the six Table III benchmark robots.
 */

#include "robots/robots.hh"

#include "dsl/sema.hh"
#include "support/logging.hh"

namespace robox::robots
{

namespace
{

// ---------------------------------------------------------------------
// MobileRobot: two-wheel mobile robot, trajectory tracking [21].
// 3 states, 2 inputs, 5 penalties, 2 constraints.
// ---------------------------------------------------------------------
const char *kMobileRobot = R"(
System MobileRobot( param vel_bound, param ang_bound ) {
  state pos[2], angle;
  input vel, ang_vel;

  pos[0].dt = vel * cos(angle);
  pos[1].dt = vel * sin(angle);
  angle.dt = ang_vel;

  vel.lower_bound <= -vel_bound;
  vel.upper_bound <= vel_bound;
  ang_vel.lower_bound <= -ang_bound;
  ang_vel.upper_bound <= ang_bound;

  Task trackTrajectory( reference ref_x, reference ref_y,
                        reference ref_angle, param w_pos, param w_ang ) {
    penalty track_x, track_y, track_angle, effort_v, effort_w;
    track_x.running = pos[0] - ref_x;
    track_x.weight <= w_pos;
    track_y.running = pos[1] - ref_y;
    track_y.weight <= w_pos;
    track_angle.running = angle - ref_angle;
    track_angle.weight <= w_ang;
    effort_v.running = vel;
    effort_v.weight <= 0.05;
    effort_w.running = ang_vel;
    effort_w.weight <= 0.05;
  }
}
reference ref_x;
reference ref_y;
reference ref_angle;
MobileRobot robot(1.0, 2.0);
robot.trackTrajectory(ref_x, ref_y, ref_angle, 1.0, 0.3);
)";

// ---------------------------------------------------------------------
// Manipulator: two-link arm, reaching [24].
// 4 states, 2 inputs, 6 penalties, 10 constraints.
// ---------------------------------------------------------------------
const char *kManipulator = R"(
System Manipulator( param tau_bound, param dq_bound ) {
  state q[2], dq[2];
  input tau[2];
  range j[0:2];

  // Two-link dynamics: M(q) ddq + c(q, dq) + g(q) = tau, with the 2x2
  // mass matrix inverted in closed form.
  cos2 = cos(q[1]);
  sin2 = sin(q[1]);
  m11 = 1.7 + 1.0 * cos2;
  m12 = 0.35 + 0.5 * cos2;
  det = m11 * 0.35 - m12 * m12;
  grav1 = 14.715 * cos(q[0]) + 4.905 * cos(q[0] + q[1]);
  grav2 = 4.905 * cos(q[0] + q[1]);
  cor1 = -0.5 * sin2 * (2 * dq[0] * dq[1] + dq[1] * dq[1]);
  cor2 = 0.5 * sin2 * dq[0] * dq[0];
  rhs1 = tau[0] - cor1 - grav1 - 0.2 * dq[0];
  rhs2 = tau[1] - cor2 - grav2 - 0.2 * dq[1];

  q[0].dt = dq[0];
  q[1].dt = dq[1];
  dq[0].dt = (0.35 * rhs1 - m12 * rhs2) / det;
  dq[1].dt = (m11 * rhs2 - m12 * rhs1) / det;

  tau[j].lower_bound <= -tau_bound;
  tau[j].upper_bound <= tau_bound;
  q[j].lower_bound <= -3.1;
  q[j].upper_bound <= 3.1;
  dq[j].lower_bound <= -dq_bound;
  dq[j].upper_bound <= dq_bound;

  Task reach( reference target_x, reference target_y, param w_pos ) {
    ee_x = cos(q[0]) + cos(q[0] + q[1]);
    ee_y = sin(q[0]) + sin(q[0] + q[1]);

    penalty reach_x, reach_y, damp[2];
    reach_x.running = ee_x - target_x;
    reach_x.weight <= w_pos;
    reach_y.running = ee_y - target_y;
    reach_y.weight <= w_pos;
    damp[j].running = dq[j];
    damp[j].weight <= 0.05;

    penalty final_x, final_y;
    final_x.terminal = ee_x - target_x;
    final_x.weight <= 10 * w_pos;
    final_y.terminal = ee_y - target_y;
    final_y.weight <= 10 * w_pos;

    // Workspace and safety constraints.
    constraint ws_x, ws_y, elbow_y, speed_sq;
    ws_x.running = ee_x;
    ws_x.lower_bound <= -2.2;
    ws_x.upper_bound <= 2.2;
    ws_y.running = ee_y;
    ws_y.lower_bound <= -2.2;
    ws_y.upper_bound <= 2.2;
    elbow_y.running = sin(q[0]);
    elbow_y.lower_bound <= -1.5;
    speed_sq.running = dq[0]^2 + dq[1]^2;
    speed_sq.upper_bound <= 20;
  }
}
reference target_x;
reference target_y;
Manipulator arm(30.0, 4.0);
arm.reach(target_x, target_y, 2.0);
)";

// ---------------------------------------------------------------------
// AutoVehicle: four-wheel vehicle, high-speed racing [20].
// 6 states, 2 inputs, 8 penalties, 8 constraints.
// ---------------------------------------------------------------------
const char *kAutoVehicle = R"(
System AutoVehicle( param v_max, param steer_max ) {
  state x, y, psi, vx, vy, omega;
  input throttle, steer;

  // Dynamic bicycle model with linear tires and drivetrain losses.
  alpha_f = atan((vy + 0.5 * omega) / vx) - steer;
  alpha_r = atan((vy - 0.5 * omega) / vx);
  force_fy = -5.0 * alpha_f;
  force_ry = -5.0 * alpha_r;
  force_rx = 3.0 * throttle - 0.2 - 0.1 * vx * vx;

  x.dt = vx * cos(psi) - vy * sin(psi);
  y.dt = vx * sin(psi) + vy * cos(psi);
  psi.dt = omega;
  vx.dt = force_rx - force_fy * sin(steer) + vy * omega;
  vy.dt = force_ry + force_fy * cos(steer) - vx * omega;
  omega.dt = (force_fy * 0.5 * cos(steer) - force_ry * 0.5) / 0.3;

  throttle.lower_bound <= -1.0;
  throttle.upper_bound <= 1.0;
  steer.lower_bound <= -steer_max;
  steer.upper_bound <= steer_max;
  vx.lower_bound <= 0.3;
  vx.upper_bound <= v_max;
  vy.lower_bound <= -1.0;
  vy.upper_bound <= 1.0;
  omega.lower_bound <= -3.0;
  omega.upper_bound <= 3.0;

  Task race( reference center_x, reference center_y, reference center_psi,
             param v_target, param track_radius ) {
    penalty track_cx, track_cy, heading, speed, slip, yaw_damp;
    penalty effort_d, effort_s;
    track_cx.running = x - center_x;
    track_cx.weight <= 1.0;
    track_cy.running = y - center_y;
    track_cy.weight <= 1.0;
    heading.running = psi - center_psi;
    heading.weight <= 0.5;
    speed.running = vx - v_target;
    speed.weight <= 0.8;
    slip.running = vy;
    slip.weight <= 0.2;
    yaw_damp.running = omega;
    yaw_damp.weight <= 0.05;
    effort_d.running = throttle;
    effort_d.weight <= 0.05;
    effort_s.running = steer;
    effort_s.weight <= 0.05;

    // Stay inside the track's lateral bounds, limit front slip, and
    // cap drivetrain power.
    constraint track_dev, front_slip, power;
    track_dev.running = y - center_y;
    track_dev.lower_bound <= -track_radius;
    track_dev.upper_bound <= track_radius;
    front_slip.running = vy + 0.5 * omega;
    front_slip.lower_bound <= -1.2;
    front_slip.upper_bound <= 1.2;
    power.running = throttle * vx;
    power.upper_bound <= 3.5;
  }
}
reference center_x;
reference center_y;
reference center_psi;
AutoVehicle car(4.0, 0.45);
car.race(center_x, center_y, center_psi, 3.0, 1.5);
)";

// ---------------------------------------------------------------------
// MicroSat: miniature satellite, orbit control [22].
// 8 states, 4 inputs, 12 penalties, 12 constraints.
// ---------------------------------------------------------------------
const char *kMicroSat = R"(
System MicroSat( param f_max, param w_max ) {
  state qw, qx, qy, qz, wx, wy, wz, alt;
  input f[4];

  // Thruster mapping to body torques and net radial thrust.
  torque_x = 0.1 * (f[0] - f[1]);
  torque_y = 0.1 * (f[2] - f[3]);
  torque_z = 0.05 * (f[0] + f[1] - f[2] - f[3]);
  thrust_total = f[0] + f[1] + f[2] + f[3];

  // Quaternion kinematics.
  qw.dt = -0.5 * (qx * wx + qy * wy + qz * wz);
  qx.dt = 0.5 * (qw * wx + qy * wz - qz * wy);
  qy.dt = 0.5 * (qw * wy + qz * wx - qx * wz);
  qz.dt = 0.5 * (qw * wz + qx * wy - qy * wx);

  // Euler rigid-body dynamics with diagonal inertia (1.0, 1.2, 0.8).
  wx.dt = (torque_x + 0.4 * wy * wz) / 1.0;
  wy.dt = (torque_y - 0.2 * wx * wz) / 1.2;
  wz.dt = (torque_z + 0.2 * wx * wy) / 0.8;

  // Radial orbit deviation: net thrust against a 2.0 nominal.
  alt.dt = 0.25 * (thrust_total - 2.0) - 0.05 * alt;

  f[0].lower_bound <= 0;    f[0].upper_bound <= f_max;
  f[1].lower_bound <= 0;    f[1].upper_bound <= f_max;
  f[2].lower_bound <= 0;    f[2].upper_bound <= f_max;
  f[3].lower_bound <= 0;    f[3].upper_bound <= f_max;
  wx.lower_bound <= -w_max; wx.upper_bound <= w_max;
  wy.lower_bound <= -w_max; wy.upper_bound <= w_max;
  wz.lower_bound <= -w_max; wz.upper_bound <= w_max;
  alt.lower_bound <= -5.0;  alt.upper_bound <= 5.0;

  Task holdOrbit( reference ref_qx, reference ref_qy, reference ref_qz,
                  reference ref_alt, param w_att, param w_alt ) {
    range i[0:4];
    penalty att_x, att_y, att_z, att_w, rate_x, rate_y, rate_z, altp;
    penalty effort[4];
    att_x.running = qx - ref_qx;
    att_x.weight <= w_att;
    att_y.running = qy - ref_qy;
    att_y.weight <= w_att;
    att_z.running = qz - ref_qz;
    att_z.weight <= w_att;
    att_w.running = qw - 1;
    att_w.weight <= 0.1;
    rate_x.running = wx;
    rate_x.weight <= 0.5;
    rate_y.running = wy;
    rate_y.weight <= 0.5;
    rate_z.running = wz;
    rate_z.weight <= 0.5;
    altp.running = alt - ref_alt;
    altp.weight <= w_alt;
    effort[i].running = f[i] - 0.5;
    effort[i].weight <= 0.02;

    // Keep the quaternion near unit norm, the boresight within the
    // pointing cone, and thruster pairs balanced.
    constraint quat_norm, cone, pair_a, pair_b;
    quat_norm.running = qw^2 + qx^2 + qy^2 + qz^2;
    quat_norm.lower_bound <= 0.95;
    quat_norm.upper_bound <= 1.05;
    cone.running = 1 - 2 * (qx^2 + qy^2);
    cone.lower_bound <= 0.0;
    pair_a.running = f[0] - f[1];
    pair_a.lower_bound <= -0.8;
    pair_a.upper_bound <= 0.8;
    pair_b.running = f[2] - f[3];
    pair_b.lower_bound <= -0.8;
    pair_b.upper_bound <= 0.8;
  }
}
reference ref_qx;
reference ref_qy;
reference ref_qz;
reference ref_alt;
MicroSat sat(1.0, 0.5);
sat.holdOrbit(ref_qx, ref_qy, ref_qz, ref_alt, 5.0, 2.0);
)";

// ---------------------------------------------------------------------
// Quadrotor: four-rotor micro UAV, motion planning [23, 27].
// 12 states, 4 inputs, 10 penalties, 7 constraints.
// ---------------------------------------------------------------------
const char *kQuadrotor = R"(
System Quadrotor( param u_max, param tilt_max ) {
  state px, py, pz, vx, vy, vz, roll, pitch, yaw, p, q, r;
  input u[4];

  thrust = u[0] + u[1] + u[2] + u[3];
  acc = thrust / 0.5;

  px.dt = vx;
  py.dt = vy;
  pz.dt = vz;
  vx.dt = acc * (cos(roll) * sin(pitch) * cos(yaw) + sin(roll) * sin(yaw))
          - 0.05 * vx;
  vy.dt = acc * (cos(roll) * sin(pitch) * sin(yaw) - sin(roll) * cos(yaw))
          - 0.05 * vy;
  vz.dt = acc * cos(roll) * cos(pitch) - 9.81 - 0.05 * vz;
  roll.dt = p;
  pitch.dt = q;
  yaw.dt = r;
  p.dt = (0.2 * (u[1] - u[3]) - 0.004 * q * r) / 0.005;
  q.dt = (0.2 * (u[2] - u[0]) + 0.004 * p * r) / 0.005;
  r.dt = (0.01 * (u[0] - u[1] + u[2] - u[3])) / 0.009;

  u[0].lower_bound <= 0;  u[0].upper_bound <= u_max;
  u[1].lower_bound <= 0;  u[1].upper_bound <= u_max;
  u[2].lower_bound <= 0;  u[2].upper_bound <= u_max;
  u[3].lower_bound <= 0;  u[3].upper_bound <= u_max;
  roll.lower_bound <= -tilt_max;
  roll.upper_bound <= tilt_max;
  pitch.lower_bound <= -tilt_max;
  pitch.upper_bound <= tilt_max;
  pz.lower_bound <= 0.05;

  Task flyTo( reference gx, reference gy, reference gz, param w_pos ) {
    penalty pos_x, pos_y, pos_z, vel_x, vel_y, vel_z;
    penalty level_r, level_p, head, hover;
    pos_x.running = px - gx;
    pos_x.weight <= w_pos;
    pos_y.running = py - gy;
    pos_y.weight <= w_pos;
    pos_z.running = pz - gz;
    pos_z.weight <= w_pos;
    vel_x.running = vx;
    vel_x.weight <= 0.1;
    vel_y.running = vy;
    vel_y.weight <= 0.1;
    vel_z.running = vz;
    vel_z.weight <= 0.1;
    level_r.running = roll;
    level_r.weight <= 0.5;
    level_p.running = pitch;
    level_p.weight <= 0.5;
    head.running = yaw;
    head.weight <= 0.5;
    hover.running = u[0] + u[1] + u[2] + u[3] - 4.905;
    hover.weight <= 0.01;
  }
}
reference gx;
reference gy;
reference gz;
Quadrotor quad(4.0, 0.6);
quad.flyTo(gx, gy, gz, 1.0);
)";

// ---------------------------------------------------------------------
// Hexacopter: six-rotor micro UAV, attitude control [6].
// 12 states, 6 inputs, 19 penalties, 10 constraints.
// ---------------------------------------------------------------------
const char *kHexacopter = R"(
System Hexacopter( param u_max, param tilt_max ) {
  state px, py, pz, vx, vy, vz, roll, pitch, yaw, p, q, r;
  input u[6];
  range i[0:6];

  // Rotor geometry: arms at 0, 60, ..., 300 degrees, alternating spin.
  thrust = sum[i](u[i]);
  acc = thrust / 0.8;
  torque_roll = 0.25 * (0.866 * u[1] + 0.866 * u[2] - 0.866 * u[4]
                        - 0.866 * u[5]);
  torque_pitch = 0.25 * (u[0] + 0.5 * u[1] - 0.5 * u[2] - u[3]
                         - 0.5 * u[4] + 0.5 * u[5]);
  torque_yaw = 0.015 * (u[0] - u[1] + u[2] - u[3] + u[4] - u[5]);

  px.dt = vx;
  py.dt = vy;
  pz.dt = vz;
  vx.dt = acc * (cos(roll) * sin(pitch) * cos(yaw) + sin(roll) * sin(yaw))
          - 0.08 * vx - 0.002 * vx^3;
  vy.dt = acc * (cos(roll) * sin(pitch) * sin(yaw) - sin(roll) * cos(yaw))
          - 0.08 * vy - 0.002 * vy^3;
  vz.dt = acc * cos(roll) * cos(pitch) - 9.81 - 0.08 * vz - 0.002 * vz^3;
  roll.dt = p + sin(roll) * tan(pitch) * q + cos(roll) * tan(pitch) * r;
  pitch.dt = cos(roll) * q - sin(roll) * r;
  yaw.dt = (sin(roll) * q + cos(roll) * r) / cos(pitch);
  p.dt = (torque_roll - 0.003 * q * r) / 0.009;
  q.dt = (torque_pitch + 0.003 * p * r) / 0.009;
  r.dt = (torque_yaw - 0.001 * p * q) / 0.016;

  u[i].lower_bound <= 0;
  u[i].upper_bound <= u_max;
  roll.lower_bound <= -tilt_max;
  roll.upper_bound <= tilt_max;
  pitch.lower_bound <= -tilt_max;
  pitch.upper_bound <= tilt_max;
  pz.lower_bound <= 0.05;

  Task trackAttitude( reference ref_roll, reference ref_pitch,
                      reference ref_yaw, param w_att, param w_rate ) {
    penalty att_r, att_p, att_y, rate_p, rate_q, rate_r;
    penalty hold_x, hold_y, hold_z, vel_x, vel_y, vel_z;
    penalty effort[6], thrust_trim;
    att_r.running = roll - ref_roll;
    att_r.weight <= w_att;
    att_p.running = pitch - ref_pitch;
    att_p.weight <= w_att;
    att_y.running = yaw - ref_yaw;
    att_y.weight <= w_att;
    rate_p.running = p;
    rate_p.weight <= w_rate;
    rate_q.running = q;
    rate_q.weight <= w_rate;
    rate_r.running = r;
    rate_r.weight <= w_rate;
    hold_x.running = px;
    hold_x.weight <= 0.01;
    hold_y.running = py;
    hold_y.weight <= 0.01;
    hold_z.running = pz - 1.0;
    hold_z.weight <= 0.5;
    vel_x.running = vx;
    vel_x.weight <= 0.02;
    vel_y.running = vy;
    vel_y.weight <= 0.02;
    vel_z.running = vz;
    vel_z.weight <= 0.1;
    effort[i].running = u[i] - 1.308;
    effort[i].weight <= 0.02;
    thrust_trim.running = sum[i](u[i]) - 7.848;
    thrust_trim.weight <= 0.01;

    constraint yaw_rate;
    yaw_rate.running = r;
    yaw_rate.lower_bound <= -2.0;
    yaw_rate.upper_bound <= 2.0;
  }
}
reference ref_roll;
reference ref_pitch;
reference ref_yaw;
Hexacopter hexa(3.0, 0.5);
hexa.trackAttitude(ref_roll, ref_pitch, ref_yaw, 4.0, 0.4);
)";

std::vector<Benchmark>
buildBenchmarks()
{
    std::vector<Benchmark> list;

    {
        Benchmark b;
        b.name = "MobileRobot";
        b.taskLabel = "Trajectory Tracking";
        b.source = kMobileRobot;
        b.options.dt = 0.1;
        b.initialState = Vector{0.0, 0.0, 0.0};
        b.reference = Vector{1.5, 1.0, 0.6};
        b.expStates = 3;
        b.expInputs = 2;
        b.expPenalties = 5;
        b.expConstraints = 2;
        list.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "Manipulator";
        b.taskLabel = "Reaching";
        b.source = kManipulator;
        b.options.dt = 0.02;
        b.initialState = Vector{-1.2, 0.6, 0.0, 0.0};
        b.reference = Vector{1.2, 1.0};
        b.expStates = 4;
        b.expInputs = 2;
        b.expPenalties = 6;
        b.expConstraints = 10;
        list.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "AutoVehicle";
        b.taskLabel = "High-Speed Racing";
        b.source = kAutoVehicle;
        b.options.dt = 0.05;
        b.initialState = Vector{0.0, 0.0, 0.0, 1.0, 0.0, 0.0};
        b.reference = Vector{2.0, 0.0, 0.0};
        b.expStates = 6;
        b.expInputs = 2;
        b.expPenalties = 8;
        b.expConstraints = 8;
        list.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "MicroSat";
        b.taskLabel = "Orbit Control";
        b.source = kMicroSat;
        b.options.dt = 0.1;
        b.initialState = Vector{1.0, 0.05, -0.04, 0.03,
                                0.0, 0.0, 0.0, 1.0};
        b.reference = Vector{0.0, 0.0, 0.0, 0.0};
        b.expStates = 8;
        b.expInputs = 4;
        b.expPenalties = 12;
        b.expConstraints = 12;
        list.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "Quadrotor";
        b.taskLabel = "Motion Planning";
        b.source = kQuadrotor;
        b.options.dt = 0.05;
        b.initialState = Vector{0.0, 0.0, 1.0, 0.0, 0.0, 0.0,
                                0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
        b.reference = Vector{1.5, 1.0, 2.0};
        b.expStates = 12;
        b.expInputs = 4;
        b.expPenalties = 10;
        b.expConstraints = 7;
        list.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "Hexacopter";
        b.taskLabel = "Attitude Control";
        b.source = kHexacopter;
        b.options.dt = 0.02;
        b.initialState = Vector{0.0, 0.0, 1.0, 0.0, 0.0, 0.0,
                                0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
        b.reference = Vector{0.25, -0.2, 0.4};
        b.expStates = 12;
        b.expInputs = 6;
        b.expPenalties = 19;
        b.expConstraints = 10;
        list.push_back(std::move(b));
    }
    return list;
}

} // namespace

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> benchmarks = buildBenchmarks();
    return benchmarks;
}

const Benchmark &
benchmark(const std::string &name)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.name == name)
            return b;
    fatal("unknown benchmark '{}'", name);
}

dsl::ModelSpec
analyzeBenchmark(const Benchmark &bench)
{
    return dsl::analyzeSource(bench.source);
}

int
tableConstraintCount(const dsl::ModelSpec &model)
{
    int bounded_vars = 0;
    for (int i = 0; i < model.nx(); ++i) {
        bounded_vars += model.stateLower[i] != -dsl::kUnbounded ||
                        model.stateUpper[i] != dsl::kUnbounded;
    }
    for (int i = 0; i < model.nu(); ++i) {
        bounded_vars += model.inputLower[i] != -dsl::kUnbounded ||
                        model.inputUpper[i] != dsl::kUnbounded;
    }
    return bounded_vars + static_cast<int>(model.constraints.size());
}

} // namespace robox::robots
