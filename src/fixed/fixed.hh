/**
 * @file
 * 32-bit fixed-point arithmetic for the RoboX accelerator datapath.
 *
 * The paper's empirical study (Sec. VIII-A) found that 32-bit fixed point
 * with 17 fractional bits makes the effect on solver convergence
 * negligible. This module implements that format (1 sign bit, 14 integer
 * bits, 17 fractional bits) with saturating arithmetic, which is what a
 * hardware ALU would implement, plus conversion helpers and saturation
 * statistics used by the simulator's numerical-fidelity tests.
 */

#ifndef ROBOX_FIXED_FIXED_HH
#define ROBOX_FIXED_FIXED_HH

#include <cstdint>
#include <limits>

namespace robox
{

/**
 * A 32-bit fixed-point number in Q14.17 format.
 *
 * All arithmetic saturates to the representable range rather than
 * wrapping; saturation events are counted in a thread-local statistic so
 * tests can verify that benchmark workloads stay inside the format.
 */
class Fixed
{
  public:
    /** Number of fractional bits in the representation. */
    static constexpr int fracBits = 17;
    /** Scale factor 2^fracBits. */
    static constexpr double scale = 131072.0;
    /** Raw value of the largest representable number. */
    static constexpr std::int32_t rawMax =
        std::numeric_limits<std::int32_t>::max();
    /** Raw value of the smallest representable number. */
    static constexpr std::int32_t rawMin =
        std::numeric_limits<std::int32_t>::min();

    /** Zero-initialized by default. */
    constexpr Fixed() : raw_(0) {}

    /** Build from a raw two's-complement bit pattern. */
    static constexpr Fixed
    fromRaw(std::int32_t raw)
    {
        Fixed f;
        f.raw_ = raw;
        return f;
    }

    /** Convert from double, rounding to nearest and saturating.
     *  NaN converts to zero and counts as a saturation event; +/-Inf
     *  saturate to the corresponding range end. */
    static Fixed fromDouble(double value);

    /** Convert back to double exactly (every Fixed is a dyadic rational). */
    constexpr double toDouble() const { return raw_ / scale; }

    /** Access the raw bit pattern. */
    constexpr std::int32_t raw() const { return raw_; }

    /** Largest representable value (~16383.99999). */
    static constexpr Fixed max() { return fromRaw(rawMax); }
    /** Smallest representable value (~-16384). */
    static constexpr Fixed min() { return fromRaw(rawMin); }
    /** Smallest positive increment (2^-17). */
    static constexpr Fixed epsilon() { return fromRaw(1); }

    Fixed operator+(Fixed o) const;
    Fixed operator-(Fixed o) const;
    Fixed operator*(Fixed o) const;
    /** Division; division by zero saturates and counts as saturation. */
    Fixed operator/(Fixed o) const;
    Fixed operator-() const;

    Fixed &operator+=(Fixed o) { return *this = *this + o; }
    Fixed &operator-=(Fixed o) { return *this = *this - o; }
    Fixed &operator*=(Fixed o) { return *this = *this * o; }
    Fixed &operator/=(Fixed o) { return *this = *this / o; }

    constexpr bool operator==(const Fixed &o) const = default;
    constexpr bool operator<(Fixed o) const { return raw_ < o.raw_; }
    constexpr bool operator<=(Fixed o) const { return raw_ <= o.raw_; }
    constexpr bool operator>(Fixed o) const { return raw_ > o.raw_; }
    constexpr bool operator>=(Fixed o) const { return raw_ >= o.raw_; }

    /**
     * Fused multiply-add a*b+c, the operation implemented by the
     * compute-enabled interconnect hops. A single rounding step is
     * applied after the wide product is accumulated.
     */
    static Fixed mulAdd(Fixed a, Fixed b, Fixed c);

    /** Largest representable magnitude (|min()| in value units). */
    static constexpr double maxAbs = 16384.0;

    /** Number of saturation events since the last reset (thread local).
     *  Division by zero and NaN conversion count here as well, since a
     *  hardware ALU reports them through the same sticky flag. */
    static std::uint64_t saturationCount();
    /** Reset the saturation statistic. */
    static void resetSaturationCount();

    /** Division-by-zero events since the last reset (thread local).
     *  A subset of saturationCount(): every division by zero is also
     *  counted as a saturation event. */
    static std::uint64_t divByZeroCount();

    /** Reset both thread-local statistics (saturation + div-by-zero). */
    static void resetCounts();

    /**
     * Fold this thread's counters into the process-wide aggregates and
     * zero the thread-local values. The counting hot path stays
     * thread-local (no atomics per event); worker threads flush once
     * per batch (mpc::BatchController does this after draining its
     * queue) so a coordinator thread can read aggregate statistics that
     * would otherwise be invisible to it.
     */
    static void flushCounts();

    /** Process-wide saturation events: everything flushed by any
     *  thread plus the calling thread's unflushed count. Counts from
     *  other threads that have not called flushCounts() yet are not
     *  included. */
    static std::uint64_t globalSaturationCount();
    /** Process-wide division-by-zero events (same visibility rules). */
    static std::uint64_t globalDivByZeroCount();
    /** Zero the process-wide aggregates and this thread's counters. */
    static void resetGlobalCounts();

  private:
    /** Clamp a wide intermediate into the 32-bit range, counting events. */
    static std::int32_t saturate(std::int64_t wide);

    std::int32_t raw_;
};

} // namespace robox

#endif // ROBOX_FIXED_FIXED_HH
