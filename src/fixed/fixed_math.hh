/**
 * @file
 * LUT-backed nonlinear math for the accelerator datapath.
 *
 * The RoboX DSL exposes the nonlinear operations sin, cos, tan, asin,
 * acos, atan, exp, and sqrt (Table I); Compute Units implement them as
 * lookup tables (Sec. V). FixedMath combines 4096-entry core-interval
 * tables with the standard hardware range reductions (quadrant folding
 * for trigonometry, power-of-two normalization for sqrt, base-2 argument
 * splitting for exp) so the tables stay small while covering the full
 * Q14.17 dynamic range.
 */

#ifndef ROBOX_FIXED_FIXED_MATH_HH
#define ROBOX_FIXED_FIXED_MATH_HH

#include "fixed/fixed.hh"
#include "fixed/lut.hh"

namespace robox
{

/**
 * A set of nonlinear-function evaluators over Fixed values. One instance
 * corresponds to one hardware LUT configuration; the default instance
 * uses the paper's 4096-entry tables.
 */
class FixedMath
{
  public:
    /** Build the tables with the given entry count per table. */
    explicit FixedMath(int lut_entries = 4096);

    /** The process-wide instance with the paper's configuration. */
    static const FixedMath &instance();

    Fixed sin(Fixed x) const;
    Fixed cos(Fixed x) const;
    Fixed tan(Fixed x) const;
    Fixed asin(Fixed x) const;
    Fixed acos(Fixed x) const;
    Fixed atan(Fixed x) const;
    Fixed exp(Fixed x) const;
    Fixed sqrt(Fixed x) const;

    /** Entry count used to build the tables. */
    int lutEntries() const { return lut_entries_; }

  private:
    /** Reduce an angle into [-pi, pi). */
    static double reduceAngle(double x);

    int lut_entries_;
    Lut sin_lut_;   //!< sin over [-pi, pi]
    Lut asin_lut_;  //!< asin over [-1, 1]
    Lut atan_lut_;  //!< atan over [-1, 1]
    Lut exp_lut_;   //!< exp over [0, ln 2]
    Lut sqrt_lut_;  //!< sqrt over [0.25, 1]
};

} // namespace robox

#endif // ROBOX_FIXED_FIXED_MATH_HH
