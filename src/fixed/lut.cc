/**
 * @file
 * Implementation of the nonlinear-function lookup table.
 */

#include "fixed/lut.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace robox
{

Lut::Lut(std::string name, const std::function<double(double)> &fn,
         double lo, double hi, int entries)
    : name_(std::move(name)), lo_(lo), hi_(hi)
{
    if (entries < 2)
        fatal("LUT '{}' needs at least 2 entries, got {}", name_, entries);
    if (!(hi > lo))
        fatal("LUT '{}' has empty domain [{}, {}]", name_, lo, hi);
    step_ = (hi - lo) / (entries - 1);
    table_.reserve(entries);
    for (int i = 0; i < entries; ++i)
        table_.push_back(Fixed::fromDouble(fn(lo + i * step_)));
}

Fixed
Lut::lookup(Fixed x) const
{
    double v = x.toDouble();
    double idx = (v - lo_) / step_;
    long i = std::lround(idx);
    i = std::clamp<long>(i, 0, static_cast<long>(table_.size()) - 1);
    return table_[static_cast<std::size_t>(i)];
}

Fixed
Lut::lookupInterp(Fixed x) const
{
    double v = x.toDouble();
    double idx = (v - lo_) / step_;
    if (idx <= 0)
        return table_.front();
    if (idx >= static_cast<double>(table_.size() - 1))
        return table_.back();
    auto i = static_cast<std::size_t>(idx);
    Fixed frac = Fixed::fromDouble(idx - static_cast<double>(i));
    // y = y0 + frac * (y1 - y0): one subtract plus one multiply-add.
    return Fixed::mulAdd(frac, table_[i + 1] - table_[i], table_[i]);
}

double
Lut::maxInterpError(const std::function<double(double)> &fn,
                    int probes) const
{
    double worst = 0.0;
    for (int i = 0; i <= probes; ++i) {
        double x = lo_ + (hi_ - lo_) * i / probes;
        double got = lookupInterp(Fixed::fromDouble(x)).toDouble();
        worst = std::max(worst, std::abs(got - fn(x)));
    }
    return worst;
}

} // namespace robox
