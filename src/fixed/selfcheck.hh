/**
 * @file
 * Self-checking execution vocabulary: fault sites, on-line detectors,
 * the recovery ladder's rungs, and the per-run SelfCheckStats report.
 *
 * The PR 3 fault-injection harness made accelerator upsets injectable;
 * this header names how they are *caught and repaired on-line*. Every
 * fixed-point execution engine (the functional accelerator simulator
 * and the solver's fixed-point tape path) maintains parity over stored
 * words and checks it on read, program images carry a CRC-32 verified
 * at load and re-verifiable mid-run, and the cycle simulator runs
 * per-engine watchdogs. A detection resolves through an escalating
 * recovery ladder — re-execute from the last solver iterate, reload
 * the program image and re-execute, fall back to the CPU
 * double-precision path — so a strike degrades service within one
 * control period instead of silently poisoning an actuator command.
 *
 * Like fixed/health.hh, this lives below both mpc and accel in the
 * dependency graph: the solver embeds a SelfCheckStats in its
 * NumericHealth while the accelerator library fills the same report
 * from the functional simulator.
 */

#ifndef ROBOX_FIXED_SELFCHECK_HH
#define ROBOX_FIXED_SELFCHECK_HH

#include <cstdint>

namespace robox
{

/** Storage structure a fault strikes. Values are bit positions so a
 *  campaign can select sites with a mask (accel::FaultCampaign). */
enum class FaultSite : std::uint32_t
{
    RegisterFile = 1u << 0, //!< CU-local result registers.
    Scratchpad = 1u << 1,   //!< Access-engine scratchpad words.
    Interconnect = 1u << 2, //!< Messages between CUs.
};

/** Human-readable site name ("register-file", "scratchpad", ...). */
inline const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::RegisterFile: return "register-file";
      case FaultSite::Scratchpad: return "scratchpad";
      case FaultSite::Interconnect: return "interconnect";
    }
    return "unknown";
}

/** On-line detector that caught a fault. */
enum class FaultDetector : std::uint8_t
{
    Parity,     //!< Per-word parity mismatch on read/delivery.
    Checksum,   //!< Program-image CRC-32 mismatch.
    Watchdog,   //!< No forward progress / queue deadlock in budget.
    CrossCheck, //!< Golden-model divergence (off-line, PR 3).
};

inline const char *
faultDetectorName(FaultDetector detector)
{
    switch (detector) {
      case FaultDetector::Parity: return "parity";
      case FaultDetector::Checksum: return "checksum";
      case FaultDetector::Watchdog: return "watchdog";
      case FaultDetector::CrossCheck: return "cross-check";
    }
    return "unknown";
}

/**
 * Rung of the escalating recovery ladder a detection resolved on.
 * Every detection terminates on one of these — the ladder has no
 * unbounded rung, so recovery latency is bounded by construction.
 */
enum class AccelRecoveryRung : std::uint8_t
{
    None = 0,    //!< No recovery needed (clean run).
    Reexecute,   //!< Re-executed the tape from the last iterate.
    Reload,      //!< Reloaded/re-verified the program image, then
                 //!< re-executed.
    CpuFallback, //!< Served by the CPU double-precision path.
};

inline const char *
recoveryRungName(AccelRecoveryRung rung)
{
    switch (rung) {
      case AccelRecoveryRung::None: return "none";
      case AccelRecoveryRung::Reexecute: return "re-execute";
      case AccelRecoveryRung::Reload: return "reload";
      case AccelRecoveryRung::CpuFallback: return "cpu-fallback";
    }
    return "unknown";
}

/** One on-line detection event: where, when, which detector fired,
 *  and the ladder rung that resolved it. */
struct AccelFaultReport
{
    FaultSite site = FaultSite::RegisterFile;
    std::uint64_t cycle = 0; //!< Logical time of the detection.
    std::uint64_t word = 0;  //!< Address within the site.
    FaultDetector detector = FaultDetector::Parity;
    AccelRecoveryRung rung = AccelRecoveryRung::None;

    bool operator==(const AccelFaultReport &o) const = default;
};

/** Even parity bit (0/1) of a 32-bit storage word. */
inline int
parity32(std::uint32_t word)
{
    word ^= word >> 16;
    word ^= word >> 8;
    word ^= word >> 4;
    word ^= word >> 2;
    word ^= word >> 1;
    return static_cast<int>(word & 1u);
}

/**
 * Detection/recovery counters of one self-checked execution. Embedded
 * in NumericHealth so the report rides SolveStats into SolverHealth,
 * BatchReport, and batchMetricsJson without new plumbing.
 */
struct SelfCheckStats
{
    std::uint64_t parityChecks = 0;   //!< Words parity-verified on read.
    std::uint64_t parityErrors = 0;   //!< Words caught corrupted.
    std::uint64_t checksumChecks = 0; //!< Image CRC verifications.
    std::uint64_t checksumErrors = 0; //!< Image CRC mismatches.
    std::uint64_t watchdogTrips = 0;  //!< Watchdog deadlock/stall trips.
    std::uint64_t reexecutions = 0;   //!< Ladder rung 1 resolutions.
    std::uint64_t reloads = 0;        //!< Ladder rung 2 resolutions.
    std::uint64_t cpuFallbacks = 0;   //!< Ladder rung 3 resolutions.

    /** Total detections across all on-line detectors. */
    std::uint64_t
    detections() const
    {
        return parityErrors + checksumErrors + watchdogTrips;
    }

    /** Accumulate another report (e.g. per-robot into a batch). */
    void
    merge(const SelfCheckStats &o)
    {
        parityChecks += o.parityChecks;
        parityErrors += o.parityErrors;
        checksumChecks += o.checksumChecks;
        checksumErrors += o.checksumErrors;
        watchdogTrips += o.watchdogTrips;
        reexecutions += o.reexecutions;
        reloads += o.reloads;
        cpuFallbacks += o.cpuFallbacks;
    }

    bool operator==(const SelfCheckStats &o) const = default;
};

} // namespace robox

#endif // ROBOX_FIXED_SELFCHECK_HH
