/**
 * @file
 * Implementation of LUT-backed fixed-point math with range reduction.
 */

#include "fixed/fixed_math.hh"

#include <cmath>
#include <numbers>

namespace robox
{

namespace
{
constexpr double kPi = std::numbers::pi;
constexpr double kLn2 = std::numbers::ln2;
} // namespace

FixedMath::FixedMath(int lut_entries)
    : lut_entries_(lut_entries),
      sin_lut_("sin", [](double x) { return std::sin(x); },
               -kPi, kPi, lut_entries),
      asin_lut_("asin", [](double x) { return std::asin(x); },
                -1.0, 1.0, lut_entries),
      atan_lut_("atan", [](double x) { return std::atan(x); },
                -1.0, 1.0, lut_entries),
      exp_lut_("exp", [](double x) { return std::exp(x); },
               0.0, kLn2, lut_entries),
      sqrt_lut_("sqrt", [](double x) { return std::sqrt(x); },
                0.25, 1.0, lut_entries)
{
}

const FixedMath &
FixedMath::instance()
{
    static FixedMath fm(4096);
    return fm;
}

double
FixedMath::reduceAngle(double x)
{
    double r = std::fmod(x + kPi, 2.0 * kPi);
    if (r < 0)
        r += 2.0 * kPi;
    return r - kPi;
}

Fixed
FixedMath::sin(Fixed x) const
{
    return sin_lut_.lookupInterp(Fixed::fromDouble(reduceAngle(x.toDouble())));
}

Fixed
FixedMath::cos(Fixed x) const
{
    double shifted = reduceAngle(x.toDouble() + kPi / 2.0);
    return sin_lut_.lookupInterp(Fixed::fromDouble(shifted));
}

Fixed
FixedMath::tan(Fixed x) const
{
    // The CU evaluates tan as sin/cos using its divider.
    return sin(x) / cos(x);
}

Fixed
FixedMath::asin(Fixed x) const
{
    double v = x.toDouble();
    if (v <= -1.0)
        return Fixed::fromDouble(-kPi / 2.0);
    if (v >= 1.0)
        return Fixed::fromDouble(kPi / 2.0);
    return asin_lut_.lookupInterp(x);
}

Fixed
FixedMath::acos(Fixed x) const
{
    // acos(x) = pi/2 - asin(x): one subtract after the table lookup.
    return Fixed::fromDouble(kPi / 2.0) - asin(x);
}

Fixed
FixedMath::atan(Fixed x) const
{
    double v = x.toDouble();
    if (v >= -1.0 && v <= 1.0)
        return atan_lut_.lookupInterp(x);
    // |x| > 1: atan(x) = sign(x) * pi/2 - atan(1/x).
    Fixed recip = Fixed::fromDouble(1.0) / x;
    Fixed half_pi = Fixed::fromDouble(kPi / 2.0);
    Fixed core = atan_lut_.lookupInterp(recip);
    return v > 0 ? half_pi - core : -half_pi - core;
}

Fixed
FixedMath::exp(Fixed x) const
{
    double v = x.toDouble();
    // exp saturates well before the argument leaves this window.
    if (v >= 10.0)
        return Fixed::fromDouble(std::exp(10.0));
    if (v <= -10.0)
        return Fixed::fromDouble(std::exp(-10.0));
    // Split x = k*ln2 + r with r in [0, ln2): exp(x) = 2^k * exp(r).
    double k = std::floor(v / kLn2);
    double r = v - k * kLn2;
    Fixed core = exp_lut_.lookupInterp(Fixed::fromDouble(r));
    Fixed pow2 = Fixed::fromDouble(std::ldexp(1.0, static_cast<int>(k)));
    return core * pow2;
}

Fixed
FixedMath::sqrt(Fixed x) const
{
    double v = x.toDouble();
    if (v <= 0.0)
        return Fixed::fromDouble(0.0);
    // Normalize x = m * 4^k with m in [0.25, 1): sqrt(x) = 2^k * sqrt(m).
    int k = 0;
    double m = v;
    while (m >= 1.0) {
        m *= 0.25;
        ++k;
    }
    while (m < 0.25) {
        m *= 4.0;
        --k;
    }
    Fixed core = sqrt_lut_.lookupInterp(Fixed::fromDouble(m));
    Fixed pow2 = Fixed::fromDouble(std::ldexp(1.0, k));
    return core * pow2;
}

} // namespace robox
