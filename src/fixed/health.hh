/**
 * @file
 * NumericHealth: a per-run report of fixed-point numeric integrity.
 *
 * The Q14.17 accelerator datapath trades dynamic range for speed, which
 * is exactly the regime where silent saturation, division blow-ups, and
 * soft errors (bit flips) corrupt control outputs without any exception
 * firing. Every fixed-point execution engine in RoboX — the functional
 * accelerator simulator (accel/functional.hh) and the solver's
 * fixed-point tape path (MpcOptions::fixedPointTapes) — fills one of
 * these reports per run so the control layer can decide whether the
 * result is trustworthy.
 *
 * This header lives in src/fixed (below both mpc and accel in the
 * dependency graph) so the solver can embed a NumericHealth in
 * SolveStats while the accelerator library renders it through
 * accel::formatNumericHealth without creating a dependency cycle.
 */

#ifndef ROBOX_FIXED_HEALTH_HH
#define ROBOX_FIXED_HEALTH_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fixed/fixed.hh"
#include "fixed/selfcheck.hh"

namespace robox
{

/**
 * Numeric-integrity statistics of one fixed-point execution (one
 * functional-simulator run, or one accelerator-path solve()).
 *
 * Saturation / div-by-zero counts come from the Fixed arithmetic
 * flags; peak magnitude is tracked by the executing engine over every
 * value it stores; the cross-check fields are filled when a
 * double-precision golden model ran alongside the fixed-point path
 * (MpcOptions::crossCheckFixedPoint).
 */
struct NumericHealth
{
    /** Saturating-arithmetic events (includes div-by-zero and NaN
     *  conversions; see Fixed::saturationCount). */
    std::uint64_t saturations = 0;
    /** Division-by-zero events (subset of saturations). */
    std::uint64_t divByZeros = 0;
    /** Fixed-point tape evaluations covered by this report. */
    std::uint64_t tapeEvals = 0;
    /** Faults injected by an attached accel::FaultInjector. */
    std::uint64_t faultsInjected = 0;

    /** Peak |value| observed across all stored fixed-point words. */
    double peakAbs = 0.0;

    /** Golden-model comparisons performed (0 = cross-check off). */
    std::uint64_t crossChecks = 0;
    /** Max |fixed - golden| over all compared words. */
    double maxAbsError = 0.0;
    /** Words whose divergence exceeded the warn band. */
    std::uint64_t toleranceWarnings = 0;
    /** Words whose divergence exceeded the fail band. A non-zero
     *  count classifies the run as numerically degraded. */
    std::uint64_t toleranceBreaches = 0;

    /** On-line detection/recovery counters (parity, checksum,
     *  watchdog, ladder rungs); see fixed/selfcheck.hh. All zero when
     *  self-checking execution is disabled. */
    SelfCheckStats selfCheck;

    /** Fraction of the representable Q14.17 magnitude ever used;
     *  values near 1.0 mean the workload is about to saturate. */
    double rangeUtilization() const { return peakAbs / Fixed::maxAbs; }

    /** True when the golden cross-check classified the run as
     *  diverged beyond the fail tolerance band. */
    bool degraded() const { return toleranceBreaches > 0; }

    /** Track one stored value's magnitude. */
    void
    trackValue(double v)
    {
        double a = std::abs(v);
        if (a > peakAbs)
            peakAbs = a;
    }

    /** Accumulate another report into this one (e.g. per-robot reports
     *  into a batch aggregate). */
    void
    merge(const NumericHealth &o)
    {
        saturations += o.saturations;
        divByZeros += o.divByZeros;
        tapeEvals += o.tapeEvals;
        faultsInjected += o.faultsInjected;
        peakAbs = std::max(peakAbs, o.peakAbs);
        crossChecks += o.crossChecks;
        maxAbsError = std::max(maxAbsError, o.maxAbsError);
        toleranceWarnings += o.toleranceWarnings;
        toleranceBreaches += o.toleranceBreaches;
        selfCheck.merge(o.selfCheck);
    }

    /** Bitwise equality; fault campaigns assert reproducibility with
     *  this. */
    bool operator==(const NumericHealth &o) const = default;
};

} // namespace robox

#endif // ROBOX_FIXED_HEALTH_HH
