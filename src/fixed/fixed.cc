/**
 * @file
 * Implementation of Q14.17 saturating fixed-point arithmetic.
 */

#include "fixed/fixed.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace robox
{

namespace
{
thread_local std::uint64_t saturation_events = 0;
thread_local std::uint64_t div_zero_events = 0;

// Process-wide aggregates fed by flushCounts(). The per-event path
// never touches these, so counting stays free of atomic traffic.
std::atomic<std::uint64_t> global_saturation_events{0};
std::atomic<std::uint64_t> global_div_zero_events{0};
} // namespace

std::int32_t
Fixed::saturate(std::int64_t wide)
{
    if (wide > rawMax) {
        ++saturation_events;
        return rawMax;
    }
    if (wide < rawMin) {
        ++saturation_events;
        return rawMin;
    }
    return static_cast<std::int32_t>(wide);
}

Fixed
Fixed::fromDouble(double value)
{
    // NaN has no ordering, so it would fall through the range checks
    // below into UB (static_cast of NaN). Defined behavior: saturate
    // to zero and report through the saturation flag, mirroring a
    // hardware converter's quiet-NaN handling.
    if (std::isnan(value)) {
        ++saturation_events;
        return fromRaw(0);
    }
    double scaled = value * scale;
    if (scaled >= static_cast<double>(rawMax)) {
        ++saturation_events;
        return fromRaw(rawMax);
    }
    if (scaled <= static_cast<double>(rawMin)) {
        ++saturation_events;
        return fromRaw(rawMin);
    }
    return fromRaw(static_cast<std::int32_t>(std::lround(scaled)));
}

Fixed
Fixed::operator+(Fixed o) const
{
    return fromRaw(saturate(static_cast<std::int64_t>(raw_) + o.raw_));
}

Fixed
Fixed::operator-(Fixed o) const
{
    return fromRaw(saturate(static_cast<std::int64_t>(raw_) - o.raw_));
}

Fixed
Fixed::operator*(Fixed o) const
{
    std::int64_t wide = static_cast<std::int64_t>(raw_) * o.raw_;
    // Round to nearest: add half an LSB before the arithmetic shift.
    wide += (std::int64_t{1} << (fracBits - 1));
    return fromRaw(saturate(wide >> fracBits));
}

Fixed
Fixed::operator/(Fixed o) const
{
    if (o.raw_ == 0) {
        ++saturation_events;
        ++div_zero_events;
        return raw_ >= 0 ? max() : min();
    }
    // Divide magnitudes with a half-divisor bias for round-to-nearest,
    // then reapply the sign; this avoids the toward-zero truncation bias
    // of signed integer division.
    std::int64_t num = std::llabs(static_cast<std::int64_t>(raw_))
                       << fracBits;
    std::int64_t den = std::llabs(static_cast<std::int64_t>(o.raw_));
    std::int64_t mag = (num + den / 2) / den;
    bool negative = (raw_ < 0) != (o.raw_ < 0);
    return fromRaw(saturate(negative ? -mag : mag));
}

Fixed
Fixed::operator-() const
{
    return fromRaw(saturate(-static_cast<std::int64_t>(raw_)));
}

Fixed
Fixed::mulAdd(Fixed a, Fixed b, Fixed c)
{
    std::int64_t wide = static_cast<std::int64_t>(a.raw_) * b.raw_;
    wide += (std::int64_t{1} << (fracBits - 1));
    wide >>= fracBits;
    wide += c.raw_;
    return fromRaw(saturate(wide));
}

std::uint64_t
Fixed::saturationCount()
{
    return saturation_events;
}

void
Fixed::resetSaturationCount()
{
    saturation_events = 0;
}

std::uint64_t
Fixed::divByZeroCount()
{
    return div_zero_events;
}

void
Fixed::resetCounts()
{
    saturation_events = 0;
    div_zero_events = 0;
}

void
Fixed::flushCounts()
{
    global_saturation_events.fetch_add(saturation_events,
                                       std::memory_order_relaxed);
    global_div_zero_events.fetch_add(div_zero_events,
                                     std::memory_order_relaxed);
    saturation_events = 0;
    div_zero_events = 0;
}

std::uint64_t
Fixed::globalSaturationCount()
{
    return global_saturation_events.load(std::memory_order_relaxed) +
           saturation_events;
}

std::uint64_t
Fixed::globalDivByZeroCount()
{
    return global_div_zero_events.load(std::memory_order_relaxed) +
           div_zero_events;
}

void
Fixed::resetGlobalCounts()
{
    global_saturation_events.store(0, std::memory_order_relaxed);
    global_div_zero_events.store(0, std::memory_order_relaxed);
    saturation_events = 0;
    div_zero_events = 0;
}

} // namespace robox
