/**
 * @file
 * Lookup tables for nonlinear functions on the accelerator.
 *
 * Each Compute Unit supports nonlinear operations through lookup tables
 * (paper Sec. V); the evaluated configuration uses 4096-entry tables
 * (Table IV). A Lut samples a scalar function uniformly over a core
 * interval. FixedMath (fixed_math.hh) layers hardware-style range
 * reduction on top so the tables only need to cover a small canonical
 * domain.
 */

#ifndef ROBOX_FIXED_LUT_HH
#define ROBOX_FIXED_LUT_HH

#include <functional>
#include <string>
#include <vector>

#include "fixed/fixed.hh"

namespace robox
{

/**
 * A uniformly-sampled lookup table over [lo, hi] with optional linear
 * interpolation between adjacent entries (one extra multiply-add in
 * hardware). Inputs outside the domain clamp to the nearest endpoint.
 */
class Lut
{
  public:
    /**
     * Build a table by sampling fn.
     *
     * @param name Debug name (e.g. "sin").
     * @param fn The function to sample, evaluated in double precision.
     * @param lo Lower end of the sampled domain.
     * @param hi Upper end of the sampled domain.
     * @param entries Number of table entries (4096 in the paper config).
     */
    Lut(std::string name, const std::function<double(double)> &fn,
        double lo, double hi, int entries = 4096);

    /** Nearest-entry lookup. */
    Fixed lookup(Fixed x) const;

    /** Linearly interpolated lookup (uses two entries and one MAC). */
    Fixed lookupInterp(Fixed x) const;

    /** Table name for diagnostics. */
    const std::string &name() const { return name_; }

    /** Number of entries. */
    int entries() const { return static_cast<int>(table_.size()); }

    /** Sampled domain. */
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * Worst-case absolute error of interpolated lookups against the
     * sampled function, probed at a dense grid. Used by accuracy tests.
     */
    double maxInterpError(const std::function<double(double)> &fn,
                          int probes = 65536) const;

  private:
    std::string name_;
    double lo_;
    double hi_;
    double step_;
    std::vector<Fixed> table_;
};

} // namespace robox

#endif // ROBOX_FIXED_LUT_HH
