/**
 * @file
 * Cycle-level simulator of the RoboX accelerator.
 *
 * Executes a mapped solver-iteration workload against the architecture
 * of Sec. V: per-CU in-order issue with a pipelined 3-stage datapath
 * (single-cycle ALU throughput, LUT nonlinears, one long-latency
 * divider per CC), SIMD vector execution across a cluster, shared-bus
 * and single-hop neighbor transfers inside a cluster, a tree-bus across
 * clusters, and reductions executed either in the compute-enabled
 * interconnect hops or — when the interconnect ALUs are disabled
 * (Fig. 10) — by serializing every element over the shared bus into a
 * single CU. The programmable memory access engine streams stage data
 * at the configured external bandwidth; compute on a stage stalls until
 * its slice has arrived, and the iteration cannot retire before all
 * updates are written back.
 *
 * The static schedule repeats identically across stages and solver
 * iterations, so cycle counts for a slice of the horizon extrapolate
 * exactly to the full horizon (extrapolate()).
 */

#ifndef ROBOX_ACCEL_SIMULATOR_HH
#define ROBOX_ACCEL_SIMULATOR_HH

#include <cstdint>

#include "accel/config.hh"
#include "accel/trace.hh"
#include "compiler/mapper.hh"
#include "mpc/problem.hh"
#include "translator/workload.hh"

namespace robox::accel
{

/** Results of simulating one solver iteration. */
struct CycleStats
{
    std::uint64_t computeCycles = 0; //!< Datapath critical finish time.
    std::uint64_t memoryCycles = 0;  //!< Access-engine streaming time.
    std::uint64_t cycles = 0;        //!< max(compute, memory).

    std::uint64_t busyCyclesPerPhase[mdfg::kNumPhases] = {};
    std::uint64_t busTransfers = 0;      //!< Intra-CC shared-bus uses.
    std::uint64_t neighborTransfers = 0; //!< Single-hop transfers.
    std::uint64_t treeTransfers = 0;     //!< Cross-CC tree-bus uses.
    std::uint64_t aggregations = 0;      //!< GROUP reductions executed.
    std::uint64_t externalBytes = 0;     //!< Off-chip traffic.

    // Per-engine watchdog trips (config.watchdogBudgetCycles > 0): a
    // node or transfer that waited past the budget with no forward
    // progress. Zero on every healthy schedule.
    std::uint64_t computeWatchdogTrips = 0; //!< CU/cluster issue stalls.
    std::uint64_t interconnectWatchdogTrips = 0; //!< Bus/tree waits.
    std::uint64_t memoryWatchdogTrips = 0;  //!< Access-engine stalls.
    /** The config.maxSimCycles hard cap stopped node issue early;
     *  cycle counts cover only the issued prefix. */
    bool cycleLimitHit = false;

    /** Total watchdog trips across the three engines. */
    std::uint64_t
    watchdogTrips() const
    {
        return computeWatchdogTrips + interconnectWatchdogTrips +
               memoryWatchdogTrips;
    }

    /** Wall-clock seconds at the configured clock. */
    double seconds(const AcceleratorConfig &config) const;
    /** Energy in joules under the busy-power model. */
    double energyJoules(const AcceleratorConfig &config) const;
};

/** Simulate one mapped solver iteration; optionally record a trace. */
CycleStats simulate(const translator::Workload &workload,
                    const compiler::ProgramMap &map,
                    const AcceleratorConfig &config,
                    Trace *trace = nullptr);

/**
 * Scale slice statistics to the full horizon. Exact because the
 * per-stage schedule is identical across stages.
 */
CycleStats extrapolate(const CycleStats &slice, int slice_stages,
                       int horizon);

/**
 * Convenience pipeline: build the workload for a representative slice
 * (min(horizon, max_slice_stages)), run Algorithm 1, simulate, and
 * extrapolate to the full horizon.
 */
CycleStats simulateIteration(const mpc::MpcProblem &problem,
                             const AcceleratorConfig &config,
                             int max_slice_stages = 64);

} // namespace robox::accel

#endif // ROBOX_ACCEL_SIMULATOR_HH
