/**
 * @file
 * Configuration of the RoboX accelerator (Table IV defaults).
 *
 * The architecture is a two-level hierarchy: numCcs Compute Clusters,
 * each with cusPerCc Compute Units, joined by a compute-enabled
 * tree-bus whose hops carry multiply-add units engaged by a bypass
 * shift register. The evaluated design point is 256 CUs (16 x 16) at
 * 1 GHz with 512 KB of on-chip memory, 4096-entry LUTs, 128 Gb/s of
 * peak external bandwidth, and a 3.4 W power envelope at 45 nm.
 */

#ifndef ROBOX_ACCEL_CONFIG_HH
#define ROBOX_ACCEL_CONFIG_HH

#include <cstdint>

namespace robox::accel
{

/** Static configuration of one accelerator instance. */
struct AcceleratorConfig
{
    int numCcs = 16;     //!< Compute Clusters.
    int cusPerCc = 16;   //!< Compute Units per cluster.
    double clockGhz = 1.0;
    double bandwidthGbps = 128.0; //!< Peak external bandwidth.
    int onChipMemoryKb = 512;
    int lutEntries = 4096;

    /** Enable the interconnect ALUs (Fig. 10 ablates this). */
    bool computeEnabledInterconnect = true;

    int divLatency = 8;       //!< Divider latency; one divider per CC.
    int nonlinearLatency = 2; //!< LUT lookup + interpolation MAC.
    int aluLatency = 1;       //!< Pipelined add/sub/mul throughput.
    int busLatency = 1;       //!< Intra-CC shared-bus transfer.
    int hopLatency = 1;       //!< Neighbor-hop / tree-level latency.

    /** Per-engine watchdog budget: a node or transfer that waits more
     *  than this many cycles with no forward progress counts a
     *  watchdog trip in CycleStats (0 = watchdogs disabled). Healthy
     *  schedules never approach a sane budget; trips flag deadlocked
     *  namespace queues or a starved engine. */
    std::uint64_t watchdogBudgetCycles = 0;
    /** Hard cap on simulated cycles: node issue stops once the
     *  critical path passes this and CycleStats::cycleLimitHit is set
     *  (0 = uncapped). A backstop so a pathological workload or model
     *  bug cannot hang the simulator. */
    std::uint64_t maxSimCycles = 0;

    int totalCus() const { return numCcs * cusPerCc; }

    /** Off-chip bytes transferred per cycle at the configured clock. */
    double
    bytesPerCycle() const
    {
        return bandwidthGbps * 1e9 / 8.0 / (clockGhz * 1e9);
    }

    /**
     * Busy-power model, calibrated so the Table IV design point (256
     * CUs, 1x bandwidth) draws 3.4 W: a fixed floor for memory, the
     * interconnect, and the access engine, plus a per-CU datapath term.
     */
    double
    powerWatts() const
    {
        double cu_fraction = static_cast<double>(totalCus()) / 256.0;
        double bw_fraction = bandwidthGbps / 128.0;
        return 0.5 + 2.7 * cu_fraction + 0.2 * bw_fraction;
    }

    /** The paper's evaluated design point. */
    static AcceleratorConfig paperDefault() { return {}; }
};

} // namespace robox::accel

#endif // ROBOX_ACCEL_CONFIG_HH
