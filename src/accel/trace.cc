/**
 * @file
 * Implementation of the Chrome trace-event export.
 */

#include "accel/trace.hh"

#include <cstdio>
#include <sstream>

#include "support/logging.hh"

namespace robox::accel
{

std::string
Trace::toChromeJson() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events_) {
        if (!first)
            os << ",";
        first = false;
        // pid = cluster, tid = CU (CC-wide work on lane 99).
        os << "{\"name\":\"" << mdfg::nodeKindName(e.kind) << " "
           << sym::opName(e.op) << "\",\"cat\":\""
           << mdfg::phaseName(e.phase) << "\",\"ph\":\"X\",\"ts\":"
           << e.start << ",\"dur\":"
           << (e.finish > e.start ? e.finish - e.start : 1)
           << ",\"pid\":" << e.cc << ",\"tid\":"
           << (e.cu >= 0 ? e.cu : 99) << ",\"args\":{\"node\":"
           << e.node << ",\"stage\":" << e.stage << "}}";
    }
    os << "]}";
    return os.str();
}

void
Trace::writeChromeJson(const std::string &path) const
{
    std::string json = toChromeJson();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open '{}' for writing", path);
    std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (written != json.size())
        fatal("short write to '{}'", path);
}

} // namespace robox::accel
