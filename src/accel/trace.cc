/**
 * @file
 * Implementation of the Chrome trace-event export.
 */

#include "accel/trace.hh"

#include <map>
#include <set>
#include <sstream>

#include "support/trace.hh"

namespace robox::accel
{

std::string
Trace::toChromeJson() const
{
    robox::trace::ChromeTraceWriter writer;

    // Collect the lanes actually used so every one gets a thread_name
    // metadata record. std::map/std::set keep the metadata order
    // deterministic regardless of event order.
    std::map<int, std::set<int>> lanes;
    for (const TraceEvent &e : events_)
        lanes[e.cc].insert(e.cu >= 0 ? e.cu : kCcWideLane);
    for (const TraceMarker &m : markers_)
        lanes[m.cc].insert(kCcWideLane);

    for (const auto &[cc, cus] : lanes) {
        std::ostringstream pname;
        pname << "CC " << cc;
        writer.setProcessName(cc, pname.str());
        for (int cu : cus) {
            std::ostringstream tname;
            if (cu == kCcWideLane)
                tname << "CC-wide (SIMD/GROUP)";
            else
                tname << "CU " << cu;
            writer.setThreadName(cc, cu, tname.str());
            // Keep the CC-wide lane above the CUs it drives.
            writer.setThreadSortIndex(cc, cu, cu);
        }
    }

    // pid = cluster, tid = CU (CC-wide work on the reserved negative
    // lane). 1 cycle = 1 us of trace time.
    for (const TraceEvent &e : events_) {
        std::ostringstream name;
        name << mdfg::nodeKindName(e.kind) << " " << sym::opName(e.op);
        std::ostringstream args;
        args << "{\"node\":" << e.node << ",\"stage\":" << e.stage
             << "}";
        writer.completeEvent(
            name.str(), mdfg::phaseName(e.phase), e.cc,
            e.cu >= 0 ? e.cu : kCcWideLane,
            static_cast<double>(e.start),
            static_cast<double>(e.finish > e.start ? e.finish - e.start
                                                   : 1),
            args.str());
    }

    // Self-check markers ride the CC-wide lane under the "accel"
    // category so viewers can filter to detections alone.
    for (const TraceMarker &m : markers_) {
        writer.instantEvent(m.name, "accel", m.cc, kCcWideLane,
                            static_cast<double>(m.cycle));
    }
    return writer.json();
}

void
Trace::writeChromeJson(const std::string &path) const
{
    robox::trace::writeTextFile(path, toChromeJson());
}

} // namespace robox::accel
