/**
 * @file
 * Functional execution of a mapped tape on the accelerator.
 *
 * The cycle simulator answers "how long"; this engine answers "is the
 * mapping correct": it executes a tape's scalar operations in Q14.17
 * on the CUs chosen by Algorithm 1, moving values between CUs only
 * where the communication map says a transfer happens. An operand that
 * was never delivered to its consumer's CU is a mapping bug and
 * panics. The outputs must equal Tape::evalFixed bit-for-bit, which
 * the tests assert for every benchmark tape.
 *
 * Modeling note: the CU namespace queues are functionally modeled as
 * local value stores; the 8-entry addressable window is a scheduling
 * constraint the static scheduler meets with pop/rewrite traffic and
 * is accounted for in the timing model, not here.
 */

#ifndef ROBOX_ACCEL_FUNCTIONAL_HH
#define ROBOX_ACCEL_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/faults.hh"
#include "fixed/fixed.hh"
#include "fixed/fixed_math.hh"
#include "fixed/health.hh"
#include "sym/tape.hh"

namespace robox::accel
{

/**
 * Knobs of the self-checking execution layer (fixed/selfcheck.hh).
 * With every detector enabled and no faults injected, a self-checked
 * run is bitwise identical to an unchecked one: detection is pure
 * overhead, never perturbation.
 */
struct SelfCheckPolicy
{
    /** Maintain a parity bit per stored word (register file and
     *  scratchpad) and per interconnect transfer, checked on read /
     *  delivery so an upset is caught at first use. */
    bool parity = true;
    /** Recovery rung 1: re-executions of the tape from the same
     *  inputs before escalating to a program-image reload. */
    int maxReexecutions = 2;
    /** Recovery rung 3: serve the run from the CPU double-precision
     *  path when re-execution and reload both stay corrupted. */
    bool cpuFallback = true;
};

/** Result of a functional run. */
struct FunctionalResult
{
    std::vector<Fixed> outputs;       //!< One value per tape output.
    std::size_t transfersApplied = 0; //!< Inter-CU deliveries used.
    std::size_t localReads = 0;       //!< Operands already resident.

    /** Numeric-integrity report for this run: saturation/div-by-zero
     *  deltas, peak magnitude over every stored word, faults taken,
     *  and (with a SelfCheckPolicy) parity/watchdog detections. */
    NumericHealth health;
    /** Peak |value| ever stored per tape slot, for per-variable range
     *  utilization (slot i of the tape -> slotPeakAbs[i]). */
    std::vector<double> slotPeakAbs;

    /** One entry per on-line detection (parity mismatch or watchdog
     *  deadlock trip), in detection order. The recovery rung is
     *  stamped by executeTapeSelfChecked (accel/selfcheck.hh);
     *  detection-only runs leave it AccelRecoveryRung::None. */
    std::vector<AccelFaultReport> faultReports;

    /** An operand was never delivered to its consumer (namespace-queue
     *  deadlock): execution aborted at the consuming instruction and
     *  outputs are untrustworthy. Only possible under a fault campaign
     *  with self-checking on; without a policy the same condition is a
     *  mapping bug and panics. */
    bool deadlock = false;
};

/**
 * Map a tape with Algorithm 1 and execute it functionally.
 *
 * @param tape The compiled tape (scalar ops only, by construction).
 * @param inputs Values for the tape's variable slots.
 * @param fm LUT configuration for the nonlinear operations.
 * @param config Accelerator shape (number of CCs/CUs).
 * @param faults Optional fault injector; when given, scratchpad
 *               preloads (cycle 0, word = slot), register-file result
 *               writes (cycle = instruction id, word = dst slot), and
 *               interconnect deliveries (cycle = consumer id, word =
 *               producer node) are filtered through it. The functional
 *               model keeps one store per slot, so an interconnect
 *               flip corrupts the delivered value for all later
 *               consumers on that CU — a pessimistic but valid SEU
 *               model.
 * @param selfcheck Optional self-checking policy; when given (and
 *               parity is on), every stored word carries a parity bit
 *               computed from the fault-free value and verified on
 *               read/delivery, detections land in
 *               FunctionalResult::faultReports, and an undelivered
 *               operand becomes a watchdog deadlock report instead of
 *               a panic.
 * @param faultCycleOffset Added to every fault-injection cycle
 *               coordinate. Re-execution attempts pass a fresh offset
 *               so the deterministic campaign hash re-rolls — a
 *               transient upset does not recur on replay, exactly like
 *               a real SEU.
 */
FunctionalResult executeTapeMapped(const sym::Tape &tape,
                                   const std::vector<Fixed> &inputs,
                                   const FixedMath &fm,
                                   const AcceleratorConfig &config,
                                   FaultInjector *faults = nullptr,
                                   const SelfCheckPolicy *selfcheck = nullptr,
                                   std::uint64_t faultCycleOffset = 0);

} // namespace robox::accel

#endif // ROBOX_ACCEL_FUNCTIONAL_HH
