/**
 * @file
 * Functional execution of a mapped tape on the accelerator.
 *
 * The cycle simulator answers "how long"; this engine answers "is the
 * mapping correct": it executes a tape's scalar operations in Q14.17
 * on the CUs chosen by Algorithm 1, moving values between CUs only
 * where the communication map says a transfer happens. An operand that
 * was never delivered to its consumer's CU is a mapping bug and
 * panics. The outputs must equal Tape::evalFixed bit-for-bit, which
 * the tests assert for every benchmark tape.
 *
 * Modeling note: the CU namespace queues are functionally modeled as
 * local value stores; the 8-entry addressable window is a scheduling
 * constraint the static scheduler meets with pop/rewrite traffic and
 * is accounted for in the timing model, not here.
 */

#ifndef ROBOX_ACCEL_FUNCTIONAL_HH
#define ROBOX_ACCEL_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "accel/config.hh"
#include "accel/faults.hh"
#include "fixed/fixed.hh"
#include "fixed/fixed_math.hh"
#include "fixed/health.hh"
#include "sym/tape.hh"

namespace robox::accel
{

/** Result of a functional run. */
struct FunctionalResult
{
    std::vector<Fixed> outputs;       //!< One value per tape output.
    std::size_t transfersApplied = 0; //!< Inter-CU deliveries used.
    std::size_t localReads = 0;       //!< Operands already resident.

    /** Numeric-integrity report for this run: saturation/div-by-zero
     *  deltas, peak magnitude over every stored word, faults taken. */
    NumericHealth health;
    /** Peak |value| ever stored per tape slot, for per-variable range
     *  utilization (slot i of the tape -> slotPeakAbs[i]). */
    std::vector<double> slotPeakAbs;
};

/**
 * Map a tape with Algorithm 1 and execute it functionally.
 *
 * @param tape The compiled tape (scalar ops only, by construction).
 * @param inputs Values for the tape's variable slots.
 * @param fm LUT configuration for the nonlinear operations.
 * @param config Accelerator shape (number of CCs/CUs).
 * @param faults Optional fault injector; when given, scratchpad
 *               preloads (cycle 0, word = slot), register-file result
 *               writes (cycle = instruction id, word = dst slot), and
 *               interconnect deliveries (cycle = consumer id, word =
 *               producer node) are filtered through it. The functional
 *               model keeps one store per slot, so an interconnect
 *               flip corrupts the delivered value for all later
 *               consumers on that CU — a pessimistic but valid SEU
 *               model.
 */
FunctionalResult executeTapeMapped(const sym::Tape &tape,
                                   const std::vector<Fixed> &inputs,
                                   const FixedMath &fm,
                                   const AcceleratorConfig &config,
                                   FaultInjector *faults = nullptr);

} // namespace robox::accel

#endif // ROBOX_ACCEL_FUNCTIONAL_HH
