/**
 * @file
 * Implementation of the cycle-level accelerator simulator.
 */

#include "accel/simulator.hh"

#include <algorithm>
#include <unordered_map>
#include <cmath>

#include "support/logging.hh"

namespace robox::accel
{

double
CycleStats::seconds(const AcceleratorConfig &config) const
{
    return static_cast<double>(cycles) / (config.clockGhz * 1e9);
}

double
CycleStats::energyJoules(const AcceleratorConfig &config) const
{
    return seconds(config) * config.powerWatts();
}

namespace
{

/** Integer log2 ceiling for tree-bus depth. */
int
log2Ceil(int n)
{
    int levels = 0;
    int span = 1;
    while (span < n) {
        span *= 2;
        ++levels;
    }
    return levels;
}

} // namespace

CycleStats
simulate(const translator::Workload &workload,
         const compiler::ProgramMap &map, const AcceleratorConfig &config,
         Trace *trace)
{
    const mdfg::Graph &graph = workload.graph;
    const int ncu = config.cusPerCc;
    const int nccs = config.numCcs;
    const int tree_levels = log2Ceil(std::max(2, nccs));
    const std::uint64_t wd_budget = config.watchdogBudgetCycles;

    CycleStats stats;

    // Watchdogs: any engine that keeps a node or transfer waiting past
    // the budget with no forward progress trips, counting once per
    // offending wait and dropping an "accel" marker on the timeline.
    auto watchdog = [&](std::uint64_t waited, std::uint64_t &counter,
                        const char *engine, std::uint64_t cycle,
                        int cc) {
        if (!wd_budget || waited <= wd_budget)
            return;
        ++counter;
        if (trace) {
            std::string name = "watchdog:";
            name += engine;
            trace->mark(std::move(name), cycle, cc);
        }
    };

    // Resource availability.
    std::vector<std::uint64_t> cu_free(
        static_cast<std::size_t>(config.totalCus()), 0);
    std::vector<std::uint64_t> bus_free(static_cast<std::size_t>(nccs), 0);
    // The tree-bus is segmented: transfers on disjoint subtrees proceed
    // concurrently, giving roughly numCcs/2 usable channels.
    std::vector<std::uint64_t> tree_free(
        static_cast<std::size_t>(std::max(1, nccs / 2)), 0);
    auto tree_channel = [&]() -> std::uint64_t & {
        std::size_t best = 0;
        for (std::size_t i = 1; i < tree_free.size(); ++i)
            if (tree_free[i] < tree_free[best])
                best = i;
        return tree_free[best];
    };

    // Memory streaming: stage k's inputs are resident after loadDone(k);
    // the fixed data (references, terminal) arrives first. When the
    // full horizon's intermediate working set exceeds the on-chip data
    // capacity (half the memory; the rest holds microcode and LUTs),
    // the access engine additionally spills and refetches each stage's
    // intermediates between the assembly and factorization phases.
    const double bpc = config.bytesPerCycle();
    double data_capacity =
        static_cast<double>(config.onChipMemoryKb) * 1024 * 3 / 4;
    double total_ws = static_cast<double>(workload.horizon) *
                      workload.bytesWorkingSetPerStage;
    // Fraction of the intermediates that cannot stay resident; only
    // the overflow streams, so the transition is gradual.
    double spill_fraction =
        total_ws > data_capacity ? (total_ws - data_capacity) / total_ws
                                 : 0.0;
    std::uint64_t spill_bytes = static_cast<std::uint64_t>(
        spill_fraction * workload.bytesWorkingSetPerStage);
    std::uint64_t in_per_stage = workload.bytesInPerStage + spill_bytes;
    std::uint64_t out_per_stage =
        workload.bytesOutPerStage + spill_bytes;
    auto load_done = [&](int stage) {
        int s = std::min(stage, workload.stages - 1);
        double bytes = static_cast<double>(workload.bytesFixed) +
                       static_cast<double>(s + 1) * in_per_stage;
        return static_cast<std::uint64_t>(std::ceil(bytes / bpc));
    };

    std::uint64_t total_bytes =
        workload.bytesFixed +
        static_cast<std::uint64_t>(workload.stages) *
            (in_per_stage + out_per_stage);
    stats.externalBytes = total_bytes;
    stats.memoryCycles =
        static_cast<std::uint64_t>(std::ceil(total_bytes / bpc));

    // Per-node completion time.
    std::vector<std::uint64_t> ready(graph.size(), 0);
    std::vector<std::uint32_t> unique_deps;

    // Transfer memoization: a produced value moves to a given cluster
    // once (multicast delivery); later consumers in that cluster read
    // the local copy. Key = producer id * numCcs + destination CC.
    std::unordered_map<std::uint64_t, std::uint64_t> delivered;

    auto op_latency = [&](sym::Op op) -> int {
        switch (op) {
          case sym::Op::Div:
            return config.divLatency;
          case sym::Op::Sin:
          case sym::Op::Cos:
          case sym::Op::Tan:
          case sym::Op::Asin:
          case sym::Op::Acos:
          case sym::Op::Atan:
          case sym::Op::Exp:
          case sym::Op::Sqrt:
            return config.nonlinearLatency;
          default:
            return config.aluLatency;
        }
    };

    for (std::uint32_t id = 0; id < graph.size(); ++id) {
        const mdfg::Node &node = graph[id];
        const compiler::Placement &pl = map.placement[id];

        // ----------------------------------------------------------
        // Operand arrival: producer finish plus transfer cost. Each
        // distinct producer is transferred once; operands of CC-wide
        // (SIMD/group) nodes produced in the same cluster are already
        // distributed across the CU queues and cost nothing extra.
        // ----------------------------------------------------------
        std::uint64_t operands = 0;
        unique_deps.clear();
        for (std::uint32_t dep : node.deps)
            if (unique_deps.empty() || unique_deps.back() != dep)
                unique_deps.push_back(dep);
        std::sort(unique_deps.begin(), unique_deps.end());
        unique_deps.erase(
            std::unique(unique_deps.begin(), unique_deps.end()),
            unique_deps.end());
        for (std::uint32_t dep : unique_deps) {
            const compiler::Placement &dp = map.placement[dep];
            std::uint64_t t = ready[dep];
            bool same_cc = dp.cc == pl.cc;
            bool cc_wide = pl.cu < 0 || dp.cu < 0;
            if (same_cc && !cc_wide && dp.cu == pl.cu) {
                // Local to the CU.
            } else if (same_cc && cc_wide) {
                // Distributed across the cluster's queues already.
            } else if (same_cc &&
                       (dp.cu - pl.cu == 1 || pl.cu - dp.cu == 1)) {
                t += config.hopLatency;
                ++stats.neighborTransfers;
            } else if (same_cc) {
                std::uint64_t key =
                    static_cast<std::uint64_t>(dep) * nccs + pl.cc;
                auto hit = delivered.find(key);
                if (hit != delivered.end()) {
                    t = std::max(t, hit->second);
                } else {
                    std::uint64_t start = std::max(t, bus_free[pl.cc]);
                    watchdog(start - t,
                             stats.interconnectWatchdogTrips,
                             "interconnect", start, pl.cc);
                    bus_free[pl.cc] = start + config.busLatency;
                    t = start + config.busLatency;
                    ++stats.busTransfers;
                    delivered.emplace(key, t);
                }
            } else {
                std::uint64_t key =
                    static_cast<std::uint64_t>(dep) * nccs + pl.cc;
                auto hit = delivered.find(key);
                if (hit != delivered.end()) {
                    t = std::max(t, hit->second);
                } else {
                    std::uint64_t &chan = tree_channel();
                    std::uint64_t start = std::max(t, chan);
                    watchdog(start - t,
                             stats.interconnectWatchdogTrips,
                             "interconnect", start, pl.cc);
                    chan = start + config.busLatency;
                    t = start + config.busLatency +
                        static_cast<std::uint64_t>(tree_levels) *
                            config.hopLatency;
                    ++stats.treeTransfers;
                    delivered.emplace(key, t);
                }
            }
            operands = std::max(operands, t);
        }

        // Tape inputs stream from external memory. A stall on the
        // access engine beyond the budget is a memory watchdog trip
        // (the engine is "making progress" in the sense of streaming,
        // but the compute side sees no forward progress).
        if (node.phase == mdfg::Phase::Dynamics ||
            node.phase == mdfg::Phase::Cost ||
            node.phase == mdfg::Phase::Constraint) {
            std::uint64_t ld = load_done(node.stage);
            if (ld > operands)
                watchdog(ld - operands, stats.memoryWatchdogTrips,
                         "memory", ld, pl.cc);
            operands = std::max(operands, ld);
        }

        // ----------------------------------------------------------
        // Issue on the mapped resource.
        // ----------------------------------------------------------
        std::uint64_t start = 0;
        std::uint64_t finish = 0;
        switch (node.kind) {
          case mdfg::NodeKind::Scalar: {
            int gcu = pl.cc * ncu + pl.cu;
            start = std::max(operands, cu_free[gcu]);
            int latency = op_latency(node.op);
            finish = start + static_cast<std::uint64_t>(latency);
            // The pipeline accepts one op per cycle except for the
            // unpipelined divider.
            cu_free[gcu] =
                start + (node.op == sym::Op::Div
                             ? static_cast<std::uint64_t>(latency)
                             : 1);
            break;
          }
          case mdfg::NodeKind::Vector: {
            // SIMD across the CC; the single divider per CC serializes
            // elementwise divisions.
            std::uint64_t cc_free = 0;
            for (int c = 0; c < ncu; ++c)
                cc_free = std::max(cc_free, cu_free[pl.cc * ncu + c]);
            start = std::max(operands, cc_free);
            std::uint64_t cycles;
            if (node.op == sym::Op::Div) {
                cycles = static_cast<std::uint64_t>(node.length) * 2;
            } else {
                cycles = static_cast<std::uint64_t>(
                    (node.length + ncu - 1) / ncu);
            }
            cycles = std::max<std::uint64_t>(
                cycles, static_cast<std::uint64_t>(op_latency(node.op)));
            finish = start + cycles;
            for (int c = 0; c < ncu; ++c)
                cu_free[pl.cc * ncu + c] = finish;
            break;
          }
          case mdfg::NodeKind::Group: {
            // The feeding SIMD multiply-accumulates distribute the
            // elements across the cluster, so the reduction uses the
            // full CU complement (bounded by the element count).
            int participants = std::max(1, std::min(node.length, ncu));
            std::uint64_t per = static_cast<std::uint64_t>(
                (node.length + participants - 1) / participants);
            ++stats.aggregations;

            if (config.computeEnabledInterconnect) {
                // Partial MACs stream through the neighbor-hop chain;
                // cross-CC reductions finish on the tree-bus, whose
                // hops also carry multiply-add units.
                std::uint64_t cc_free = 0;
                for (int c = 0; c < ncu; ++c)
                    cc_free =
                        std::max(cc_free, cu_free[pl.cc * ncu + c]);
                start = std::max(operands, cc_free);
                std::uint64_t cycles =
                    per + static_cast<std::uint64_t>(participants) *
                              config.hopLatency;
                if (pl.crossCc) {
                    std::uint64_t &chan = tree_channel();
                    std::uint64_t tstart =
                        std::max(start + cycles, chan);
                    chan = tstart + per;
                    cycles = (tstart - start) + per +
                             static_cast<std::uint64_t>(tree_levels) *
                                 config.hopLatency;
                    ++stats.treeTransfers;
                }
                finish = start + cycles;
                for (int c = 0; c < ncu; ++c)
                    cu_free[pl.cc * ncu + c] =
                        std::max(cu_free[pl.cc * ncu + c], start + per);
            } else {
                // No interconnect ALUs: the hops still move data in
                // bypass mode, but the combines no longer ride the
                // hops. The partials transit the neighbor chain to a
                // destination CU, which executes the P-1 combines
                // itself: the reduction's latency roughly doubles
                // (transit + serial combine) and the destination CU is
                // busy for the combine tail.
                std::uint64_t cc_free = 0;
                for (int c = 0; c < ncu; ++c)
                    cc_free =
                        std::max(cc_free, cu_free[pl.cc * ncu + c]);
                start = std::max(operands, cc_free);
                std::uint64_t transit =
                    static_cast<std::uint64_t>(participants) *
                    config.hopLatency;
                // The destination combines each partial as it arrives,
                // so the serial-combine tail overlaps the transit and
                // only its pipeline drain is exposed.
                std::uint64_t combine =
                    static_cast<std::uint64_t>(participants) *
                        config.aluLatency / 2 +
                    config.aluLatency;
                std::uint64_t cycles = per + transit + combine;
                if (pl.crossCc) {
                    std::uint64_t &chan = tree_channel();
                    std::uint64_t tstart =
                        std::max(start + cycles, chan);
                    chan = tstart + per;
                    cycles = (tstart - start) + per +
                             static_cast<std::uint64_t>(tree_levels) *
                                 config.hopLatency +
                             static_cast<std::uint64_t>(
                                 config.aluLatency) *
                                 2;
                    ++stats.treeTransfers;
                }
                finish = start + cycles;
                // The feeding CUs are busy for their partials; the
                // destination additionally absorbs the combine tail,
                // which costs the cluster about one extra issue slot.
                for (int c = 0; c < ncu; ++c)
                    cu_free[pl.cc * ncu + c] = std::max(
                        cu_free[pl.cc * ncu + c], start + per + 1);
            }
            break;
          }
        }

        // A CU/cluster that sat on ready operands past the budget is a
        // compute-engine watchdog trip.
        watchdog(start - std::min(start, operands),
                 stats.computeWatchdogTrips, "compute", start, pl.cc);

        ready[id] = finish;
        stats.busyCyclesPerPhase[static_cast<int>(node.phase)] +=
            finish - start;
        stats.computeCycles = std::max(stats.computeCycles, finish);

        if (trace) {
            TraceEvent event;
            event.node = id;
            event.kind = node.kind;
            event.op = node.op;
            event.phase = node.phase;
            event.stage = node.stage;
            event.cc = pl.cc;
            event.cu = pl.cu;
            event.start = start;
            event.finish = finish;
            trace->record(event);
        }

        // Hard cap: stop issuing once the critical path passes the
        // limit, so a runaway workload bounds the simulation instead
        // of hanging it.
        if (config.maxSimCycles && finish > config.maxSimCycles) {
            stats.cycleLimitHit = true;
            if (trace)
                trace->mark("cycle-limit", config.maxSimCycles, pl.cc);
            break;
        }
    }

    if (stats.cycleLimitHit) {
        stats.computeCycles =
            std::min(stats.computeCycles, config.maxSimCycles);
        stats.memoryCycles =
            std::min(stats.memoryCycles, config.maxSimCycles);
    }
    stats.cycles = std::max(stats.computeCycles, stats.memoryCycles);
    return stats;
}

CycleStats
extrapolate(const CycleStats &slice, int slice_stages, int horizon)
{
    robox_assert(slice_stages >= 1 && horizon >= slice_stages);
    if (horizon == slice_stages)
        return slice;
    double factor = static_cast<double>(horizon) / slice_stages;
    CycleStats out = slice;
    out.computeCycles = static_cast<std::uint64_t>(
        std::llround(slice.computeCycles * factor));
    out.memoryCycles = static_cast<std::uint64_t>(
        std::llround(slice.memoryCycles * factor));
    out.cycles = std::max(out.computeCycles, out.memoryCycles);
    for (int p = 0; p < mdfg::kNumPhases; ++p) {
        out.busyCyclesPerPhase[p] = static_cast<std::uint64_t>(
            std::llround(slice.busyCyclesPerPhase[p] * factor));
    }
    out.busTransfers = static_cast<std::uint64_t>(
        std::llround(slice.busTransfers * factor));
    out.neighborTransfers = static_cast<std::uint64_t>(
        std::llround(slice.neighborTransfers * factor));
    out.treeTransfers = static_cast<std::uint64_t>(
        std::llround(slice.treeTransfers * factor));
    out.aggregations = static_cast<std::uint64_t>(
        std::llround(slice.aggregations * factor));
    out.externalBytes = static_cast<std::uint64_t>(
        std::llround(slice.externalBytes * factor));
    // The per-stage schedule repeats, so slice watchdog trips repeat
    // with it; cycleLimitHit copies through unscaled.
    out.computeWatchdogTrips = static_cast<std::uint64_t>(
        std::llround(slice.computeWatchdogTrips * factor));
    out.interconnectWatchdogTrips = static_cast<std::uint64_t>(
        std::llround(slice.interconnectWatchdogTrips * factor));
    out.memoryWatchdogTrips = static_cast<std::uint64_t>(
        std::llround(slice.memoryWatchdogTrips * factor));
    return out;
}

CycleStats
simulateIteration(const mpc::MpcProblem &problem,
                  const AcceleratorConfig &config, int max_slice_stages)
{
    int slice = std::min(problem.horizon(), max_slice_stages);
    translator::Workload workload =
        translator::buildSolverIteration(problem, slice);
    compiler::ProgramMap map = compiler::mapGraph(workload.graph, config);
    CycleStats stats = simulate(workload, map, config);
    return extrapolate(stats, slice, problem.horizon());
}

} // namespace robox::accel
