/**
 * @file
 * Self-checking tape execution: detection plus a recovery ladder.
 *
 * executeTapeMapped (accel/functional.hh) detects — parity mismatches
 * on stored words and interconnect deliveries, watchdog trips on
 * undelivered operands. This harness decides what to do about it, with
 * an escalating ladder modeled on how a real deployment would react to
 * a transient upset:
 *
 *   rung 1  Re-execute the tape from the same inputs (a transient SEU
 *           does not recur; each attempt re-rolls the deterministic
 *           campaign hash via a fresh fault-cycle offset).
 *   rung 2  Re-verify / reload the program image (CRC-32,
 *           compiler/binary.hh) and re-execute once more — the answer
 *           to persistent corruption of the instruction store.
 *   rung 3  Serve the evaluation from the CPU double-precision path.
 *           The accelerator result is abandoned; the control loop
 *           still gets an answer, late but correct.
 *
 * Rungs 1 and 2 recover silently (counted in SelfCheckStats); only a
 * run that falls through to rung 3 — or exhausts the ladder with
 * cpuFallback disabled — is condemned, which is what the solver maps
 * to SolveStatus::AccelFault.
 */

#ifndef ROBOX_ACCEL_SELFCHECK_HH
#define ROBOX_ACCEL_SELFCHECK_HH

#include <cstdint>
#include <vector>

#include "accel/functional.hh"

namespace robox::accel
{

/** Outcome of a self-checked execution. */
struct SelfCheckedResult
{
    /** The accepted functional run (the last attempt). Its
     *  health.selfCheck aggregates every attempt, and its faultReports
     *  hold every detection across attempts with the recovery rung
     *  that answered each one stamped in. */
    FunctionalResult run;

    /** Deepest rung the ladder climbed to. None = first attempt was
     *  clean; Reexecute/Reload = recovered silently; CpuFallback =
     *  the accelerator result was abandoned. */
    AccelRecoveryRung rung = AccelRecoveryRung::None;

    /** Total executeTapeMapped attempts (>= 1). */
    std::uint64_t attempts = 1;

    /** Filled when rung == CpuFallback: the double-precision outputs
     *  that replace run.outputs. */
    std::vector<double> fallbackOutputs;

    /** True when the final outputs are trustworthy (either a clean
     *  attempt or the CPU fallback). False only when the ladder was
     *  exhausted with cpuFallback disabled. */
    bool trusted = true;
};

/**
 * Execute a tape with detection on and the recovery ladder armed.
 *
 * @param tape,inputs,fm,config As executeTapeMapped.
 * @param policy Detection knobs and ladder depth.
 * @param faults Optional campaign; without one the first attempt is
 *               clean by construction and the ladder never engages, so
 *               the result is bitwise identical to an unchecked run.
 * @param image Optional packed program image (compiler::packImage).
 *              When given, the reload rung re-verifies its CRC-32 and
 *              records the check; a corrupted image fails the reload
 *              rung immediately and escalates.
 */
SelfCheckedResult
executeTapeSelfChecked(const sym::Tape &tape,
                       const std::vector<Fixed> &inputs,
                       const FixedMath &fm,
                       const AcceleratorConfig &config,
                       const SelfCheckPolicy &policy,
                       FaultInjector *faults = nullptr,
                       const std::vector<std::uint8_t> *image = nullptr);

} // namespace robox::accel

#endif // ROBOX_ACCEL_SELFCHECK_HH
