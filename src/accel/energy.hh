/**
 * @file
 * Per-event energy breakdown of an accelerator run.
 *
 * The paper reports a single synthesized power figure (3.4 W at 45 nm
 * from Synopsys DC); without the synthesis flow we substitute an
 * event-based energy model with per-operation, per-transfer, and
 * per-byte constants plus static leakage, chosen so a fully-busy
 * paper-configuration run dissipates on the order of the reported
 * envelope. The flat CycleStats::energyJoules() (power x time at the
 * Table IV envelope) remains the number used for performance-per-watt;
 * this breakdown is the design-exploration diagnostic.
 */

#ifndef ROBOX_ACCEL_ENERGY_HH
#define ROBOX_ACCEL_ENERGY_HH

#include "accel/simulator.hh"

namespace robox::accel
{

/** Energy constants of the 45 nm design point (joules per event). */
struct EnergyModel
{
    double opJ = 12e-12;        //!< Per scalar ALU/LUT operation.
    double busTransferJ = 8e-12;  //!< Per intra-CC shared-bus word.
    double hopTransferJ = 2e-12;  //!< Per neighbor-hop word.
    double treeTransferJ = 16e-12; //!< Per tree-bus word.
    double aggregationJ = 6e-12;   //!< Per in-hop combine engaged.
    double memoryBytesJ = 40e-12;  //!< Per off-chip byte.
    double staticWatts = 1.2;      //!< Leakage + clock tree.
};

/** Itemized energy of one simulated run. */
struct EnergyBreakdown
{
    double computeJ = 0.0;
    double busJ = 0.0;
    double neighborJ = 0.0;
    double treeJ = 0.0;
    double aggregationJ = 0.0;
    double memoryJ = 0.0;
    double staticJ = 0.0;

    double
    totalJ() const
    {
        return computeJ + busJ + neighborJ + treeJ + aggregationJ +
               memoryJ + staticJ;
    }

    /** Implied average power over the run. */
    double impliedWatts(double seconds) const
    {
        return totalJ() / seconds;
    }
};

/**
 * Itemize the energy of a run.
 *
 * @param stats Simulation statistics (one solver iteration).
 * @param config Accelerator configuration (for the clock and busy-op
 *        estimate).
 * @param total_ops Scalar-equivalent operation count of the workload
 *        (from the M-DFG), which drives the compute term.
 * @param model Energy constants; defaults to the 45 nm point.
 */
EnergyBreakdown energyBreakdown(const CycleStats &stats,
                                const AcceleratorConfig &config,
                                std::uint64_t total_ops,
                                const EnergyModel &model = EnergyModel());

} // namespace robox::accel

#endif // ROBOX_ACCEL_ENERGY_HH
