/**
 * @file
 * Implementation of functional mapped-tape execution.
 */

#include "accel/functional.hh"

#include <limits>
#include <set>
#include <unordered_map>

#include "compiler/mapper.hh"
#include "mdfg/mdfg.hh"
#include "support/logging.hh"

namespace robox::accel
{

namespace
{

constexpr std::uint32_t kExternal =
    std::numeric_limits<std::uint32_t>::max();

/** Apply one tape instruction in fixed point. */
Fixed
apply(const sym::Tape::Instr &in, Fixed a, Fixed b, const FixedMath &fm)
{
    switch (in.op) {
      case sym::Op::Add: return a + b;
      case sym::Op::Sub: return a - b;
      case sym::Op::Mul: return a * b;
      case sym::Op::Div: return a / b;
      case sym::Op::Min: return a < b ? a : b;
      case sym::Op::Max: return a > b ? a : b;
      case sym::Op::Neg: return -a;
      case sym::Op::Pow: {
        int e = in.ipow < 0 ? -in.ipow : in.ipow;
        Fixed acc = Fixed::fromDouble(1.0);
        for (int i = 0; i < e; ++i)
            acc *= a;
        if (in.ipow < 0)
            acc = Fixed::fromDouble(1.0) / acc;
        return acc;
      }
      case sym::Op::Sin: return fm.sin(a);
      case sym::Op::Cos: return fm.cos(a);
      case sym::Op::Tan: return fm.tan(a);
      case sym::Op::Asin: return fm.asin(a);
      case sym::Op::Acos: return fm.acos(a);
      case sym::Op::Atan: return fm.atan(a);
      case sym::Op::Exp: return fm.exp(a);
      case sym::Op::Sqrt: return fm.sqrt(a);
      default:
        panic("functional: bad op {}", sym::opName(in.op));
    }
}

} // namespace

FunctionalResult
executeTapeMapped(const sym::Tape &tape, const std::vector<Fixed> &inputs,
                  const FixedMath &fm, const AcceleratorConfig &config)
{
    robox_assert(static_cast<int>(inputs.size()) == tape.numVars());

    // Lower the tape into an M-DFG so Algorithm 1 can place it. Node i
    // corresponds to tape instruction i because every variable slot is
    // an external input here.
    mdfg::Graph graph;
    std::vector<std::uint32_t> ext(
        static_cast<std::size_t>(tape.numVars()), kExternal);
    std::vector<std::uint32_t> outputs_nodes;
    graph.addTape(tape, ext, mdfg::Phase::Dynamics, 0, outputs_nodes);
    robox_assert(graph.size() == tape.instrs().size());

    compiler::ProgramMap map = compiler::mapGraph(graph, config);

    // Slot values: inputs and constant preloads are resident in every
    // CU (the access engine broadcasts them); instruction results are
    // produced on one CU and move only via the communication map.
    std::vector<Fixed> slot_value(
        static_cast<std::size_t>(tape.numSlots()));
    std::vector<bool> slot_global(
        static_cast<std::size_t>(tape.numSlots()), false);
    for (int i = 0; i < tape.numVars(); ++i) {
        slot_value[i] = inputs[i];
        slot_global[i] = true;
    }
    for (const sym::Tape::Preload &p : tape.preloads()) {
        slot_value[p.slot] = Fixed::fromDouble(p.value);
        slot_global[p.slot] = true;
    }

    // Availability of produced values: (node, global CU) pairs granted
    // either by production or by a recorded transfer.
    std::set<std::pair<std::uint32_t, int>> available;
    std::size_t transfer_cursor = 0;
    const int ncu = config.cusPerCc;

    FunctionalResult result;

    // slot -> producing node (for instruction results).
    std::vector<std::uint32_t> slot_node(
        static_cast<std::size_t>(tape.numSlots()), kExternal);

    for (std::uint32_t id = 0; id < graph.size(); ++id) {
        const sym::Tape::Instr &in = tape.instrs()[id];
        const compiler::Placement &pl = map.placement[id];
        int gcu = pl.cc * ncu + pl.cu;

        // Deliver any transfers scheduled before this consumer runs.
        while (transfer_cursor < map.transfers.size() &&
               map.transfers[transfer_cursor].consumer <= id) {
            const compiler::Transfer &t = map.transfers[transfer_cursor];
            int dst = t.dstCc * ncu + std::max(0, t.dstCu);
            if (!available.count({t.producer,
                                  t.srcCc * ncu +
                                      std::max(0, t.srcCu)})) {
                panic("functional: transfer of node {} from a CU that "
                      "does not hold it", t.producer);
            }
            available.insert({t.producer, dst});
            ++result.transfersApplied;
            ++transfer_cursor;
        }

        auto fetch = [&](int slot) -> Fixed {
            if (slot_global[slot])
                return slot_value[slot];
            std::uint32_t producer = slot_node[slot];
            robox_assert(producer != kExternal);
            if (!available.count({producer, gcu})) {
                panic("functional: node {} consumes node {} on cu {} "
                      "but the communication map never delivered it",
                      id, producer, gcu);
            }
            ++result.localReads;
            return slot_value[slot];
        };

        Fixed a = fetch(in.a);
        Fixed b = in.b >= 0 ? fetch(in.b) : Fixed();
        slot_value[in.dst] = apply(in, a, b, fm);
        slot_node[in.dst] = id;
        available.insert({id, gcu});
    }

    result.outputs.reserve(tape.outputSlots().size());
    for (int slot : tape.outputSlots())
        result.outputs.push_back(slot_value[slot]);
    return result;
}

} // namespace robox::accel
