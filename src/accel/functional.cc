/**
 * @file
 * Implementation of functional mapped-tape execution.
 */

#include "accel/functional.hh"

#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "compiler/mapper.hh"
#include "mdfg/mdfg.hh"
#include "support/logging.hh"

namespace robox::accel
{

namespace
{

constexpr std::uint32_t kExternal =
    std::numeric_limits<std::uint32_t>::max();

/** Apply one tape instruction in fixed point. */
Fixed
apply(const sym::Tape::Instr &in, Fixed a, Fixed b, const FixedMath &fm)
{
    switch (in.op) {
      case sym::Op::Add: return a + b;
      case sym::Op::Sub: return a - b;
      case sym::Op::Mul: return a * b;
      case sym::Op::Div: return a / b;
      case sym::Op::Min: return a < b ? a : b;
      case sym::Op::Max: return a > b ? a : b;
      case sym::Op::Neg: return -a;
      case sym::Op::Pow: {
        int e = in.ipow < 0 ? -in.ipow : in.ipow;
        Fixed acc = Fixed::fromDouble(1.0);
        for (int i = 0; i < e; ++i)
            acc *= a;
        if (in.ipow < 0)
            acc = Fixed::fromDouble(1.0) / acc;
        return acc;
      }
      case sym::Op::Sin: return fm.sin(a);
      case sym::Op::Cos: return fm.cos(a);
      case sym::Op::Tan: return fm.tan(a);
      case sym::Op::Asin: return fm.asin(a);
      case sym::Op::Acos: return fm.acos(a);
      case sym::Op::Atan: return fm.atan(a);
      case sym::Op::Exp: return fm.exp(a);
      case sym::Op::Sqrt: return fm.sqrt(a);
      default:
        panic("functional: bad op {}", sym::opName(in.op));
    }
}

} // namespace

FunctionalResult
executeTapeMapped(const sym::Tape &tape, const std::vector<Fixed> &inputs,
                  const FixedMath &fm, const AcceleratorConfig &config,
                  FaultInjector *faults)
{
    robox_assert(static_cast<int>(inputs.size()) == tape.numVars());

    const std::uint64_t sat0 = Fixed::saturationCount();
    const std::uint64_t div0 = Fixed::divByZeroCount();
    const std::uint64_t faults0 = faults ? faults->faultsInjected() : 0;

    // Lower the tape into an M-DFG so Algorithm 1 can place it. Node i
    // corresponds to tape instruction i because every variable slot is
    // an external input here.
    mdfg::Graph graph;
    std::vector<std::uint32_t> ext(
        static_cast<std::size_t>(tape.numVars()), kExternal);
    std::vector<std::uint32_t> outputs_nodes;
    graph.addTape(tape, ext, mdfg::Phase::Dynamics, 0, outputs_nodes);
    robox_assert(graph.size() == tape.instrs().size());

    compiler::ProgramMap map = compiler::mapGraph(graph, config);

    // Slot values: inputs and constant preloads are resident in every
    // CU (the access engine broadcasts them); instruction results are
    // produced on one CU and move only via the communication map.
    std::vector<Fixed> slot_value(
        static_cast<std::size_t>(tape.numSlots()));
    std::vector<bool> slot_global(
        static_cast<std::size_t>(tape.numSlots()), false);

    FunctionalResult result;
    result.slotPeakAbs.assign(
        static_cast<std::size_t>(tape.numSlots()), 0.0);

    // Record one stored word: peak-magnitude tracking feeds the
    // per-variable range-utilization report.
    auto store = [&](int slot, Fixed v) {
        slot_value[slot] = v;
        double a = std::abs(v.toDouble());
        if (a > result.slotPeakAbs[slot])
            result.slotPeakAbs[slot] = a;
        result.health.trackValue(a);
    };

    // Inputs and preloads land in the access-engine scratchpad before
    // execution starts: fault cycle 0, word = slot.
    for (int i = 0; i < tape.numVars(); ++i) {
        Fixed v = inputs[i];
        if (faults)
            v = faults->access(v, FaultSite::Scratchpad, 0,
                               static_cast<std::uint64_t>(i));
        store(i, v);
        slot_global[i] = true;
    }
    for (const sym::Tape::Preload &p : tape.preloads()) {
        Fixed v = Fixed::fromDouble(p.value);
        if (faults)
            v = faults->access(v, FaultSite::Scratchpad, 0,
                               static_cast<std::uint64_t>(p.slot));
        store(p.slot, v);
        slot_global[p.slot] = true;
    }

    // Availability of produced values: (node, global CU) pairs granted
    // either by production or by a recorded transfer.
    std::set<std::pair<std::uint32_t, int>> available;
    std::size_t transfer_cursor = 0;
    const int ncu = config.cusPerCc;

    // slot -> producing node (for instruction results).
    std::vector<std::uint32_t> slot_node(
        static_cast<std::size_t>(tape.numSlots()), kExternal);

    for (std::uint32_t id = 0; id < graph.size(); ++id) {
        const sym::Tape::Instr &in = tape.instrs()[id];
        const compiler::Placement &pl = map.placement[id];
        int gcu = pl.cc * ncu + pl.cu;

        // Deliver any transfers scheduled before this consumer runs.
        while (transfer_cursor < map.transfers.size() &&
               map.transfers[transfer_cursor].consumer <= id) {
            const compiler::Transfer &t = map.transfers[transfer_cursor];
            int dst = t.dstCc * ncu + std::max(0, t.dstCu);
            if (!available.count({t.producer,
                                  t.srcCc * ncu +
                                      std::max(0, t.srcCu)})) {
                panic("functional: transfer of node {} from a CU that "
                      "does not hold it", t.producer);
            }
            if (faults) {
                // The message rides the interconnect: upset the word
                // as delivered (cycle = consumer id, word = producer).
                int slot = tape.instrs()[t.producer].dst;
                Fixed v = faults->access(
                    slot_value[slot], FaultSite::Interconnect, id,
                    static_cast<std::uint64_t>(t.producer));
                if (v.raw() != slot_value[slot].raw())
                    store(slot, v);
            }
            available.insert({t.producer, dst});
            ++result.transfersApplied;
            ++transfer_cursor;
        }

        auto fetch = [&](int slot) -> Fixed {
            if (slot_global[slot])
                return slot_value[slot];
            std::uint32_t producer = slot_node[slot];
            robox_assert(producer != kExternal);
            if (!available.count({producer, gcu})) {
                panic("functional: node {} consumes node {} on cu {} "
                      "but the communication map never delivered it",
                      id, producer, gcu);
            }
            ++result.localReads;
            return slot_value[slot];
        };

        Fixed a = fetch(in.a);
        Fixed b = in.b >= 0 ? fetch(in.b) : Fixed();
        Fixed out = apply(in, a, b, fm);
        if (faults) {
            // The result lands in the CU's register file: cycle =
            // instruction id, word = destination slot.
            out = faults->access(out, FaultSite::RegisterFile, id,
                                 static_cast<std::uint64_t>(in.dst));
        }
        store(in.dst, out);
        slot_node[in.dst] = id;
        available.insert({id, gcu});
    }

    result.outputs.reserve(tape.outputSlots().size());
    for (int slot : tape.outputSlots())
        result.outputs.push_back(slot_value[slot]);

    result.health.tapeEvals = 1;
    result.health.saturations = Fixed::saturationCount() - sat0;
    result.health.divByZeros = Fixed::divByZeroCount() - div0;
    result.health.faultsInjected =
        faults ? faults->faultsInjected() - faults0 : 0;
    return result;
}

} // namespace robox::accel
