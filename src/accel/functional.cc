/**
 * @file
 * Implementation of functional mapped-tape execution.
 */

#include "accel/functional.hh"

#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "compiler/mapper.hh"
#include "mdfg/mdfg.hh"
#include "support/logging.hh"

namespace robox::accel
{

namespace
{

constexpr std::uint32_t kExternal =
    std::numeric_limits<std::uint32_t>::max();

/** Apply one tape instruction in fixed point. */
Fixed
apply(const sym::Tape::Instr &in, Fixed a, Fixed b, const FixedMath &fm)
{
    switch (in.op) {
      case sym::Op::Add: return a + b;
      case sym::Op::Sub: return a - b;
      case sym::Op::Mul: return a * b;
      case sym::Op::Div: return a / b;
      case sym::Op::Min: return a < b ? a : b;
      case sym::Op::Max: return a > b ? a : b;
      case sym::Op::Neg: return -a;
      case sym::Op::Pow: {
        int e = in.ipow < 0 ? -in.ipow : in.ipow;
        Fixed acc = Fixed::fromDouble(1.0);
        for (int i = 0; i < e; ++i)
            acc *= a;
        if (in.ipow < 0)
            acc = Fixed::fromDouble(1.0) / acc;
        return acc;
      }
      case sym::Op::Sin: return fm.sin(a);
      case sym::Op::Cos: return fm.cos(a);
      case sym::Op::Tan: return fm.tan(a);
      case sym::Op::Asin: return fm.asin(a);
      case sym::Op::Acos: return fm.acos(a);
      case sym::Op::Atan: return fm.atan(a);
      case sym::Op::Exp: return fm.exp(a);
      case sym::Op::Sqrt: return fm.sqrt(a);
      default:
        panic("functional: bad op {}", sym::opName(in.op));
    }
}

} // namespace

FunctionalResult
executeTapeMapped(const sym::Tape &tape, const std::vector<Fixed> &inputs,
                  const FixedMath &fm, const AcceleratorConfig &config,
                  FaultInjector *faults, const SelfCheckPolicy *selfcheck,
                  std::uint64_t faultCycleOffset)
{
    robox_assert(static_cast<int>(inputs.size()) == tape.numVars());

    const std::uint64_t sat0 = Fixed::saturationCount();
    const std::uint64_t div0 = Fixed::divByZeroCount();
    const std::uint64_t faults0 = faults ? faults->faultsInjected() : 0;
    const bool parity_on = selfcheck && selfcheck->parity;

    // Lower the tape into an M-DFG so Algorithm 1 can place it. Node i
    // corresponds to tape instruction i because every variable slot is
    // an external input here.
    mdfg::Graph graph;
    std::vector<std::uint32_t> ext(
        static_cast<std::size_t>(tape.numVars()), kExternal);
    std::vector<std::uint32_t> outputs_nodes;
    graph.addTape(tape, ext, mdfg::Phase::Dynamics, 0, outputs_nodes);
    robox_assert(graph.size() == tape.instrs().size());

    compiler::ProgramMap map = compiler::mapGraph(graph, config);

    // Slot values: inputs and constant preloads are resident in every
    // CU (the access engine broadcasts them); instruction results are
    // produced on one CU and move only via the communication map.
    std::vector<Fixed> slot_value(
        static_cast<std::size_t>(tape.numSlots()));
    std::vector<bool> slot_global(
        static_cast<std::size_t>(tape.numSlots()), false);

    FunctionalResult result;
    result.slotPeakAbs.assign(
        static_cast<std::size_t>(tape.numSlots()), 0.0);

    // Parity bit per slot, computed from the fault-free value at store
    // time. An SEU flips a data bit but not the parity bit, so the
    // first read of a corrupted word mismatches.
    std::vector<std::uint8_t> slot_parity(
        static_cast<std::size_t>(tape.numSlots()), 0);

    // Record one stored word: peak-magnitude tracking feeds the
    // per-variable range-utilization report. `truth` is the fault-free
    // value the parity bit is computed from; `v` is what the storage
    // structure actually holds after the fault filter.
    auto store = [&](int slot, Fixed truth, Fixed v) {
        slot_value[slot] = v;
        if (parity_on)
            slot_parity[slot] = static_cast<std::uint8_t>(
                parity32(static_cast<std::uint32_t>(truth.raw())));
        double a = std::abs(v.toDouble());
        if (a > result.slotPeakAbs[slot])
            result.slotPeakAbs[slot] = a;
        result.health.trackValue(a);
    };

    // Verify one word against its parity bit; on mismatch, record the
    // detection and re-adopt the corrupted word's parity so each upset
    // is reported exactly once (scrub-on-detect).
    auto parity_check = [&](int slot, FaultSite site,
                            std::uint64_t cycle, std::uint64_t word) {
        if (!parity_on)
            return;
        ++result.health.selfCheck.parityChecks;
        std::uint32_t raw =
            static_cast<std::uint32_t>(slot_value[slot].raw());
        if (parity32(raw) == slot_parity[slot])
            return;
        ++result.health.selfCheck.parityErrors;
        result.faultReports.push_back(
            {site, cycle, word, FaultDetector::Parity,
             AccelRecoveryRung::None});
        slot_parity[slot] =
            static_cast<std::uint8_t>(parity32(raw));
    };

    // Inputs and preloads land in the access-engine scratchpad before
    // execution starts: fault cycle 0 (+ attempt offset), word = slot.
    for (int i = 0; i < tape.numVars(); ++i) {
        Fixed truth = inputs[i];
        Fixed v = truth;
        if (faults)
            v = faults->access(v, FaultSite::Scratchpad,
                               faultCycleOffset,
                               static_cast<std::uint64_t>(i));
        store(i, truth, v);
        slot_global[i] = true;
    }
    for (const sym::Tape::Preload &p : tape.preloads()) {
        Fixed truth = Fixed::fromDouble(p.value);
        Fixed v = truth;
        if (faults)
            v = faults->access(v, FaultSite::Scratchpad,
                               faultCycleOffset,
                               static_cast<std::uint64_t>(p.slot));
        store(p.slot, truth, v);
        slot_global[p.slot] = true;
    }

    // Availability of produced values: (node, global CU) pairs granted
    // either by production or by a recorded transfer.
    std::set<std::pair<std::uint32_t, int>> available;
    std::size_t transfer_cursor = 0;
    const int ncu = config.cusPerCc;

    // slot -> producing node (for instruction results).
    std::vector<std::uint32_t> slot_node(
        static_cast<std::size_t>(tape.numSlots()), kExternal);

    // Undelivered-operand handling: a mapping that never delivers a
    // consumed value is a compiler bug and panics — unless a self-check
    // policy is attached, in which case the same condition is what a
    // fault-corrupted namespace queue looks like from the consumer:
    // the watchdog trips, the run is flagged, and the recovery ladder
    // (accel/selfcheck.hh) takes over instead of the process dying.
    auto watchdog_trip = [&](std::uint64_t cycle, std::uint64_t word) {
        ++result.health.selfCheck.watchdogTrips;
        result.faultReports.push_back(
            {FaultSite::Interconnect, cycle, word,
             FaultDetector::Watchdog, AccelRecoveryRung::None});
        result.deadlock = true;
    };

    for (std::uint32_t id = 0;
         id < graph.size() && !result.deadlock; ++id) {
        const sym::Tape::Instr &in = tape.instrs()[id];
        const compiler::Placement &pl = map.placement[id];
        int gcu = pl.cc * ncu + pl.cu;
        const std::uint64_t fcycle = id + faultCycleOffset;

        // Deliver any transfers scheduled before this consumer runs.
        while (transfer_cursor < map.transfers.size() &&
               map.transfers[transfer_cursor].consumer <= id) {
            const compiler::Transfer &t = map.transfers[transfer_cursor];
            int dst = t.dstCc * ncu + std::max(0, t.dstCu);
            if (!available.count({t.producer,
                                  t.srcCc * ncu +
                                      std::max(0, t.srcCu)})) {
                if (selfcheck) {
                    watchdog_trip(fcycle, t.producer);
                    break;
                }
                panic("functional: transfer of node {} from a CU that "
                      "does not hold it", t.producer);
            }
            int slot = tape.instrs()[t.producer].dst;
            if (faults) {
                // The message rides the interconnect: upset the word
                // as delivered (cycle = consumer id, word = producer).
                Fixed v = faults->access(
                    slot_value[slot], FaultSite::Interconnect, fcycle,
                    static_cast<std::uint64_t>(t.producer));
                if (v.raw() != slot_value[slot].raw()) {
                    // Corrupted in transit: the data word changes but
                    // the parity bit computed at the producer rides
                    // along unchanged, so the delivery check below (or
                    // the first fetch) sees the mismatch.
                    slot_value[slot] = v;
                    result.health.trackValue(std::abs(v.toDouble()));
                }
            }
            parity_check(slot, FaultSite::Interconnect, fcycle,
                         static_cast<std::uint64_t>(t.producer));
            available.insert({t.producer, dst});
            ++result.transfersApplied;
            ++transfer_cursor;
        }
        if (result.deadlock)
            break;

        auto fetch = [&](int slot) -> Fixed {
            if (slot_global[slot]) {
                parity_check(slot, FaultSite::Scratchpad, fcycle,
                             static_cast<std::uint64_t>(slot));
                return slot_value[slot];
            }
            std::uint32_t producer = slot_node[slot];
            robox_assert(producer != kExternal);
            if (!available.count({producer, gcu})) {
                if (selfcheck) {
                    watchdog_trip(fcycle, producer);
                    return Fixed();
                }
                panic("functional: node {} consumes node {} on cu {} "
                      "but the communication map never delivered it",
                      id, producer, gcu);
            }
            ++result.localReads;
            parity_check(slot, FaultSite::RegisterFile, fcycle,
                         static_cast<std::uint64_t>(slot));
            return slot_value[slot];
        };

        Fixed a = fetch(in.a);
        Fixed b = in.b >= 0 ? fetch(in.b) : Fixed();
        if (result.deadlock)
            break;
        Fixed truth = apply(in, a, b, fm);
        Fixed out = truth;
        if (faults) {
            // The result lands in the CU's register file: cycle =
            // instruction id, word = destination slot.
            out = faults->access(out, FaultSite::RegisterFile, fcycle,
                                 static_cast<std::uint64_t>(in.dst));
        }
        store(in.dst, truth, out);
        slot_node[in.dst] = id;
        available.insert({id, gcu});
    }

    result.outputs.reserve(tape.outputSlots().size());
    for (int slot : tape.outputSlots()) {
        // Handing an output to the host is a read too: an upset on a
        // result no later instruction consumed is still caught here.
        parity_check(slot,
                     slot_global[slot] ? FaultSite::Scratchpad
                                       : FaultSite::RegisterFile,
                     graph.size() + faultCycleOffset,
                     static_cast<std::uint64_t>(slot));
        result.outputs.push_back(slot_value[slot]);
    }

    result.health.tapeEvals = 1;
    result.health.saturations = Fixed::saturationCount() - sat0;
    result.health.divByZeros = Fixed::divByZeroCount() - div0;
    result.health.faultsInjected =
        faults ? faults->faultsInjected() - faults0 : 0;
    return result;
}

} // namespace robox::accel
