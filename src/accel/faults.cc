/**
 * @file
 * Implementation of deterministic seeded fault injection.
 */

#include "accel/faults.hh"

#include "support/logging.hh"

namespace robox::accel
{

namespace
{

/** splitmix64 finalizer: a fast, well-mixed 64-bit permutation. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Hash of one access identity under one seed. Chained mixes keep the
 *  site/cycle/word contributions from cancelling each other. */
std::uint64_t
accessHash(std::uint64_t seed, FaultSite site, std::uint64_t cycle,
           std::uint64_t word)
{
    std::uint64_t h = mix64(seed ^ 0x5bf03635f0a5a8d5ull);
    h = mix64(h ^ static_cast<std::uint64_t>(site));
    h = mix64(h ^ cycle);
    h = mix64(h ^ word);
    return h;
}

} // namespace

int
FaultInjector::faultBitAt(FaultSite site, std::uint64_t cycle,
                          std::uint64_t word) const
{
    if (campaign_.upsetRate <= 0.0)
        return -1;
    if (!(campaign_.siteMask & static_cast<std::uint32_t>(site)))
        return -1;
    if (cycle < campaign_.cycleBegin || cycle >= campaign_.cycleEnd)
        return -1;
    if (campaign_.targetWord >= 0 &&
        word != static_cast<std::uint64_t>(campaign_.targetWord)) {
        return -1;
    }

    std::uint64_t h = accessHash(campaign_.seed, site, cycle, word);
    // Top 53 bits -> uniform double in [0, 1); exact and portable.
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= campaign_.upsetRate)
        return -1;

    if (campaign_.targetBit >= 0)
        return campaign_.targetBit & 31;
    // Derive the bit from an independent mix so it is not correlated
    // with the strike decision.
    return static_cast<int>(mix64(h) & 31);
}

Fixed
FaultInjector::access(Fixed value, FaultSite site, std::uint64_t cycle,
                      std::uint64_t word)
{
    if (campaign_.maxFaults && log_.size() >= campaign_.maxFaults)
        return value;
    int bit = faultBitAt(site, cycle, word);
    if (bit < 0)
        return value;

    std::int32_t before = value.raw();
    std::int32_t after = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(before) ^ (1u << bit));
    log_.push_back({cycle, site, word, bit, before, after});
    return Fixed::fromRaw(after);
}

std::function<std::uint64_t(std::vector<Fixed> &, std::uint64_t)>
FaultInjector::tapeHook()
{
    return [this](std::vector<Fixed> &env,
                  std::uint64_t cycle) -> std::uint64_t {
        std::uint64_t injected = 0;
        for (std::size_t w = 0; w < env.size(); ++w) {
            Fixed upset = access(env[w], FaultSite::Scratchpad, cycle,
                                 static_cast<std::uint64_t>(w));
            if (upset.raw() != env[w].raw()) {
                env[w] = upset;
                ++injected;
            }
        }
        return injected;
    };
}

} // namespace robox::accel
