/**
 * @file
 * gem5-style statistics report of a simulated accelerator run.
 *
 * Bridges CycleStats / EnergyBreakdown into the support/stats
 * framework so runs dump in the familiar aligned "name value # desc"
 * format (and CSV), uniform with other simulators in the field.
 */

#ifndef ROBOX_ACCEL_REPORT_HH
#define ROBOX_ACCEL_REPORT_HH

#include <string>

#include "accel/energy.hh"
#include "accel/simulator.hh"
#include "accel/trace.hh"
#include "fixed/health.hh"

namespace robox::accel
{

/**
 * Render one run's statistics.
 *
 * @param name Report name (e.g. the benchmark).
 * @param stats Simulation results.
 * @param config The simulated configuration.
 * @param total_ops Scalar-equivalent op count of the workload.
 * @param csv Render as CSV instead of the aligned text dump.
 */
std::string formatReport(const std::string &name, const CycleStats &stats,
                         const AcceleratorConfig &config,
                         std::uint64_t total_ops, bool csv = false);

/**
 * Render per-node-kind latency histograms from an execution trace
 * (start-to-finish cycles of SCALAR / VECTOR / GROUP nodes).
 */
std::string formatLatencyHistograms(const std::string &name,
                                    const Trace &trace);

/**
 * Render a numeric-integrity report (saturations, div-by-zeros,
 * range utilization, injected faults, golden cross-check verdicts)
 * in the same aligned stats format.
 *
 * @param name Report name (e.g. the benchmark or robot).
 * @param health The per-run report to render.
 * @param csv Render as CSV instead of the aligned text dump.
 */
std::string formatNumericHealth(const std::string &name,
                                const NumericHealth &health,
                                bool csv = false);

} // namespace robox::accel

#endif // ROBOX_ACCEL_REPORT_HH
