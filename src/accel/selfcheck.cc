/**
 * @file
 * Implementation of the self-checking execution recovery ladder.
 */

#include "accel/selfcheck.hh"

#include "compiler/binary.hh"

namespace robox::accel
{

namespace
{

/** Did this attempt detect anything that needs recovery? */
bool
tainted(const FunctionalResult &r)
{
    return r.deadlock || !r.faultReports.empty();
}

/** Stamp every report of one attempt with the rung that answered it,
 *  append to the ladder-wide list, and drain the source so a report is
 *  never collected twice when rungs share one tainted attempt. */
void
collect(std::vector<AccelFaultReport> &all, FunctionalResult &r,
        AccelRecoveryRung rung)
{
    for (AccelFaultReport rep : r.faultReports) {
        rep.rung = rung;
        all.push_back(rep);
    }
    r.faultReports.clear();
}

} // namespace

SelfCheckedResult
executeTapeSelfChecked(const sym::Tape &tape,
                       const std::vector<Fixed> &inputs,
                       const FixedMath &fm,
                       const AcceleratorConfig &config,
                       const SelfCheckPolicy &policy,
                       FaultInjector *faults,
                       const std::vector<std::uint8_t> *image)
{
    // Each attempt shifts every fault-cycle coordinate past the range
    // the previous attempt used, so the deterministic campaign hash
    // re-rolls: transients clear on retry, exactly like real SEUs.
    const std::uint64_t stride =
        static_cast<std::uint64_t>(tape.instrs().size()) + 1;

    SelfCheckedResult out;
    SelfCheckStats agg;
    std::vector<AccelFaultReport> reports;

    auto attempt = [&](std::uint64_t index) {
        FunctionalResult r = executeTapeMapped(
            tape, inputs, fm, config, faults, &policy, index * stride);
        agg.merge(r.health.selfCheck);
        return r;
    };

    out.run = attempt(0);

    // Rung 1: re-execution.
    std::uint64_t index = 0;
    const std::uint64_t max_reexec =
        policy.maxReexecutions > 0
            ? static_cast<std::uint64_t>(policy.maxReexecutions)
            : 0;
    while (tainted(out.run) && index < max_reexec) {
        collect(reports, out.run, AccelRecoveryRung::Reexecute);
        ++agg.reexecutions;
        out.rung = AccelRecoveryRung::Reexecute;
        out.run = attempt(++index);
        ++out.attempts;
    }

    // Rung 2: program-image verification + one reload re-execution.
    // `unresolved` tracks taint across the collect() drains: a corrupt
    // image skips the re-execution, and that run is still condemned
    // even though its reports were already stamped.
    bool unresolved = tainted(out.run);
    if (unresolved) {
        collect(reports, out.run, AccelRecoveryRung::Reload);
        ++agg.reloads;
        out.rung = AccelRecoveryRung::Reload;
        bool image_ok = true;
        if (image) {
            ++agg.checksumChecks;
            if (compiler::verifyImage(*image) !=
                compiler::ImageStatus::Ok) {
                ++agg.checksumErrors;
                image_ok = false;
            }
        }
        if (image_ok) {
            out.run = attempt(++index);
            ++out.attempts;
            unresolved = tainted(out.run);
        }
    }

    // Rung 3: abandon the accelerator, serve from the CPU.
    if (unresolved) {
        collect(reports, out.run, policy.cpuFallback
                                      ? AccelRecoveryRung::CpuFallback
                                      : AccelRecoveryRung::Reload);
        if (policy.cpuFallback) {
            ++agg.cpuFallbacks;
            out.rung = AccelRecoveryRung::CpuFallback;
            std::vector<double> dinputs;
            dinputs.reserve(inputs.size());
            for (Fixed v : inputs)
                dinputs.push_back(v.toDouble());
            out.fallbackOutputs = tape.eval(dinputs);
        } else {
            out.trusted = false;
        }
    }

    out.run.health.selfCheck = agg;
    out.run.faultReports = std::move(reports);
    return out;
}

} // namespace robox::accel
