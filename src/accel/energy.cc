/**
 * @file
 * Implementation of the event-based energy model.
 */

#include "accel/energy.hh"

namespace robox::accel
{

EnergyBreakdown
energyBreakdown(const CycleStats &stats, const AcceleratorConfig &config,
                std::uint64_t total_ops, const EnergyModel &model)
{
    EnergyBreakdown out;
    out.computeJ = static_cast<double>(total_ops) * model.opJ;
    out.busJ = static_cast<double>(stats.busTransfers) *
               model.busTransferJ;
    out.neighborJ = static_cast<double>(stats.neighborTransfers) *
                    model.hopTransferJ;
    out.treeJ = static_cast<double>(stats.treeTransfers) *
                model.treeTransferJ;
    out.aggregationJ = static_cast<double>(stats.aggregations) *
                       model.aggregationJ;
    out.memoryJ = static_cast<double>(stats.externalBytes) *
                  model.memoryBytesJ;
    out.staticJ = model.staticWatts * stats.seconds(config);
    return out;
}

} // namespace robox::accel
