/**
 * @file
 * Deterministic seeded fault injection for the accelerator datapath.
 *
 * Soft errors (single-event upsets) in the register file, scratchpad,
 * or interconnect of an accelerator silently corrupt values; on a
 * control accelerator such a flip propagates into an actuator command.
 * This engine makes such upsets *injectable and reproducible*: a
 * FaultCampaign describes where/when/how often bits flip, and the
 * decision for each storage access is a pure function of
 * (seed, site, cycle, word) — no internal RNG stream — so a campaign
 * replays bitwise identically regardless of thread scheduling or the
 * order in which robots are solved.
 *
 * Wiring: the functional simulator (accel/functional.hh) takes an
 * optional FaultInjector and filters register-file writes, scratchpad
 * preloads, and interconnect deliveries through access(). The solver's
 * fixed-point tape path attaches the same engine through
 * FaultInjector::tapeHook() (see MpcProblem::setTapeFaultHook), which
 * upsets the quantized environment words before each tape evaluation.
 */

#ifndef ROBOX_ACCEL_FAULTS_HH
#define ROBOX_ACCEL_FAULTS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fixed/fixed.hh"
#include "fixed/selfcheck.hh"

namespace robox::accel
{

// FaultSite and faultSiteName now live in fixed/selfcheck.hh (below
// both mpc and accel) so the solver's self-checking tape path can name
// sites without depending on the accelerator library. These
// using-declarations keep accel::FaultSite spelling valid.
using robox::FaultSite;
using robox::faultSiteName;

/**
 * Specification of one reproducible fault campaign.
 *
 * Every field participates in the injection decision, which is a pure
 * hash of (seed, site, cycle, word): two runs with an equal campaign
 * see equal faults.
 */
struct FaultCampaign
{
    /** Seed for the decision hash; distinct seeds give statistically
     *  independent campaigns. */
    std::uint64_t seed = 1;
    /** Probability that any single qualifying access is upset. */
    double upsetRate = 0.0;
    /** OR of FaultSite values that may be struck. */
    std::uint32_t siteMask = static_cast<std::uint32_t>(
                                 FaultSite::RegisterFile) |
                             static_cast<std::uint32_t>(
                                 FaultSite::Scratchpad) |
                             static_cast<std::uint32_t>(
                                 FaultSite::Interconnect);
    /** Restrict strikes to one word index (-1 = any word). */
    std::int64_t targetWord = -1;
    /** Force the flipped bit position (-1 = hash-chosen bit 0..31). */
    int targetBit = -1;
    /** First cycle (inclusive) at which faults may occur. */
    std::uint64_t cycleBegin = 0;
    /** One past the last strikeable cycle (exclusive): an access at
     *  cycle == cycleEnd is never struck, and cycleBegin == cycleEnd
     *  is an empty window that strikes nothing. The default covers
     *  every representable cycle. */
    std::uint64_t cycleEnd = std::uint64_t(-1);
    /** Stop injecting after this many faults (0 = unlimited). The
     *  budget is consulted before each access, so exactly maxFaults
     *  flips land: the access that would be flip maxFaults + 1 passes
     *  through unmodified even if its hash qualifies. */
    std::uint64_t maxFaults = 0;

    bool operator==(const FaultCampaign &o) const = default;
};

/** Record of one injected upset, for logs and reproducibility checks. */
struct InjectedFault
{
    std::uint64_t cycle = 0;
    FaultSite site = FaultSite::RegisterFile;
    std::uint64_t word = 0;
    int bit = 0;
    std::int32_t before = 0; //!< Raw Q14.17 word before the flip.
    std::int32_t after = 0;  //!< Raw word after the flip.

    bool operator==(const InjectedFault &o) const = default;
};

/**
 * Applies a FaultCampaign to a stream of storage accesses.
 *
 * Not thread safe: the fault log and maxFaults budget are plain
 * members. Give each concurrently-solved robot its own injector (the
 * decision function is stateless, so injectors sharing a campaign
 * behave as one campaign split across robots when their words/cycles
 * are disjoint).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultCampaign &campaign)
        : campaign_(campaign)
    {}

    /**
     * Filter one storage access. Returns the value with at most one
     * bit flipped; logs the fault when a flip happens.
     *
     * @param value The fault-free word being stored/moved.
     * @param site Which structure the word lives in.
     * @param cycle Logical time of the access (instruction id for the
     *              functional sim, tape-eval counter for the solver
     *              hook). Any monotone access index works as long as
     *              both runs of a campaign use the same convention.
     * @param word Address of the access within the site.
     */
    Fixed access(Fixed value, FaultSite site, std::uint64_t cycle,
                 std::uint64_t word);

    /**
     * Pure decision function: would (site, cycle, word) be struck
     * under this campaign, ignoring the maxFaults budget? Exposed so
     * tests can audit determinism without mutating the injector.
     * Returns the bit to flip, or -1 for no fault.
     */
    int faultBitAt(FaultSite site, std::uint64_t cycle,
                   std::uint64_t word) const;

    /** All faults injected so far, in access order. */
    const std::vector<InjectedFault> &log() const { return log_; }

    /** Number of faults injected so far. */
    std::uint64_t faultsInjected() const { return log_.size(); }

    /** Forget all injected faults (campaign unchanged), so one
     *  injector can serve a fresh identical run. */
    void reset() { log_.clear(); }

    const FaultCampaign &campaign() const { return campaign_; }

    /**
     * Adapt this injector to MpcProblem::setTapeFaultHook: the
     * returned callable upsets the quantized environment words of one
     * tape evaluation (treated as Scratchpad accesses, word = slot
     * index) and returns how many faults it injected.
     */
    std::function<std::uint64_t(std::vector<Fixed> &, std::uint64_t)>
    tapeHook();

  private:
    FaultCampaign campaign_;
    std::vector<InjectedFault> log_;
};

} // namespace robox::accel

#endif // ROBOX_ACCEL_FAULTS_HH
