/**
 * @file
 * Implementation of the statistics report.
 */

#include "accel/report.hh"

#include "support/stats.hh"

namespace robox::accel
{

std::string
formatReport(const std::string &name, const CycleStats &stats,
             const AcceleratorConfig &config, std::uint64_t total_ops,
             bool csv)
{
    using stats::Formula;
    using stats::Scalar;
    using stats::StatGroup;

    Scalar cycles("cycles", "total cycles (max of compute, memory)");
    cycles.set(static_cast<double>(stats.cycles));
    Scalar compute("computeCycles", "datapath critical finish time");
    compute.set(static_cast<double>(stats.computeCycles));
    Scalar memory("memoryCycles", "access-engine streaming time");
    memory.set(static_cast<double>(stats.memoryCycles));
    Scalar ops("totalOps", "scalar-equivalent operations");
    ops.set(static_cast<double>(total_ops));
    Scalar bus("busTransfers", "intra-cluster shared-bus words");
    bus.set(static_cast<double>(stats.busTransfers));
    Scalar neighbor("neighborTransfers", "single-hop words");
    neighbor.set(static_cast<double>(stats.neighborTransfers));
    Scalar tree("treeTransfers", "tree-bus words");
    tree.set(static_cast<double>(stats.treeTransfers));
    Scalar aggs("aggregations", "GROUP reductions executed");
    aggs.set(static_cast<double>(stats.aggregations));
    Scalar bytes("externalBytes", "off-chip traffic");
    bytes.set(static_cast<double>(stats.externalBytes));

    std::vector<Scalar> phases;
    phases.reserve(mdfg::kNumPhases);
    for (int p = 0; p < mdfg::kNumPhases; ++p) {
        phases.emplace_back(
            std::string("busyCycles::") +
                mdfg::phaseName(static_cast<mdfg::Phase>(p)),
            "busy cycles attributed to the phase");
        phases.back().set(
            static_cast<double>(stats.busyCyclesPerPhase[p]));
    }

    Formula ops_per_cycle("opsPerCycle", "achieved throughput", [&] {
        return stats.cycles ? static_cast<double>(total_ops) /
                                  static_cast<double>(stats.cycles)
                            : 0.0;
    });
    Formula utilization("utilization", "fraction of peak issue width",
                        [&] {
                            double peak = config.totalCus();
                            return stats.cycles
                                       ? static_cast<double>(total_ops) /
                                             (peak * stats.cycles)
                                       : 0.0;
                        });
    EnergyBreakdown energy =
        energyBreakdown(stats, config, total_ops);
    Formula energy_uj("energyMicroJoules", "event-model energy", [&] {
        return energy.totalJ() * 1e6;
    });
    Formula implied_w("impliedWatts", "event-model average power", [&] {
        return energy.impliedWatts(stats.seconds(config));
    });

    StatGroup group(name);
    group.add(&cycles);
    group.add(&compute);
    group.add(&memory);
    group.add(&ops);
    group.add(&bus);
    group.add(&neighbor);
    group.add(&tree);
    group.add(&aggs);
    group.add(&bytes);
    for (Scalar &s : phases)
        group.add(&s);
    group.add(&ops_per_cycle);
    group.add(&utilization);
    group.add(&energy_uj);
    group.add(&implied_w);
    return csv ? group.csv() : group.dump();
}

std::string
formatLatencyHistograms(const std::string &name, const Trace &trace)
{
    stats::Histogram scalar("latency::scalar",
                            "SCALAR node start-to-finish cycles", 0, 16,
                            8);
    stats::Histogram vector("latency::vector",
                            "VECTOR node start-to-finish cycles", 0, 64,
                            8);
    stats::Histogram group("latency::group",
                           "GROUP node start-to-finish cycles", 0, 64,
                           8);
    for (const TraceEvent &e : trace.events()) {
        double cycles = static_cast<double>(e.finish - e.start);
        switch (e.kind) {
          case mdfg::NodeKind::Scalar: scalar.sample(cycles); break;
          case mdfg::NodeKind::Vector: vector.sample(cycles); break;
          case mdfg::NodeKind::Group: group.sample(cycles); break;
        }
    }
    stats::StatGroup group_stats(name);
    group_stats.add(&scalar);
    group_stats.add(&vector);
    group_stats.add(&group);
    return group_stats.dump();
}

std::string
formatNumericHealth(const std::string &name, const NumericHealth &health,
                    bool csv)
{
    using stats::Formula;
    using stats::Scalar;
    using stats::StatGroup;

    Scalar saturations("saturations", "saturating-arithmetic events");
    saturations.set(static_cast<double>(health.saturations));
    Scalar div_zeros("divByZeros", "division-by-zero events");
    div_zeros.set(static_cast<double>(health.divByZeros));
    Scalar evals("tapeEvals", "fixed-point tape evaluations");
    evals.set(static_cast<double>(health.tapeEvals));
    Scalar injected("faultsInjected", "bit flips from the fault engine");
    injected.set(static_cast<double>(health.faultsInjected));
    Scalar peak("peakAbs", "largest |value| stored");
    peak.set(health.peakAbs);
    Formula range_util("rangeUtilization",
                       "fraction of Q14.17 magnitude used",
                       [&] { return health.rangeUtilization(); });
    Scalar checks("crossChecks", "golden-model comparisons");
    checks.set(static_cast<double>(health.crossChecks));
    Scalar max_err("maxAbsError", "max |fixed - golden| divergence");
    max_err.set(health.maxAbsError);
    Scalar warns("toleranceWarnings", "divergences past the warn band");
    warns.set(static_cast<double>(health.toleranceWarnings));
    Scalar breaches("toleranceBreaches",
                    "divergences past the fail band");
    breaches.set(static_cast<double>(health.toleranceBreaches));
    Formula degraded("degraded", "1 when the run is NumericDegraded",
                     [&] { return health.degraded() ? 1.0 : 0.0; });

    StatGroup group(name);
    group.add(&saturations);
    group.add(&div_zeros);
    group.add(&evals);
    group.add(&injected);
    group.add(&peak);
    group.add(&range_util);
    group.add(&checks);
    group.add(&max_err);
    group.add(&warns);
    group.add(&breaches);
    group.add(&degraded);
    return csv ? group.csv() : group.dump();
}

} // namespace robox::accel
