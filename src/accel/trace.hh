/**
 * @file
 * Execution tracing for the cycle-level simulator.
 *
 * When a Trace is passed to accel::simulate(), every M-DFG node's
 * placement and [start, finish) cycle window is recorded. The trace
 * exports to the Chrome trace-event JSON format (load in
 * chrome://tracing or Perfetto): clusters appear as processes, CUs as
 * threads, with CC-wide SIMD/GROUP work on a dedicated lane.
 */

#ifndef ROBOX_ACCEL_TRACE_HH
#define ROBOX_ACCEL_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mdfg/mdfg.hh"

namespace robox::accel
{

/** One executed node occurrence. */
struct TraceEvent
{
    std::uint32_t node = 0;
    mdfg::NodeKind kind = mdfg::NodeKind::Scalar;
    sym::Op op = sym::Op::Add;
    mdfg::Phase phase = mdfg::Phase::Dynamics;
    int stage = 0;
    int cc = 0;
    int cu = -1; //!< -1 for CC-wide execution.
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
};

/** An append-only execution trace. */
class Trace
{
  public:
    void
    record(TraceEvent event)
    {
        events_.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /**
     * Export as Chrome trace-event JSON ("traceEvents" array of "X"
     * complete events; 1 cycle = 1 us of trace time).
     */
    std::string toChromeJson() const;

    /** Write the JSON to a file; fatal() on I/O failure. */
    void writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace robox::accel

#endif // ROBOX_ACCEL_TRACE_HH
