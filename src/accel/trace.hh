/**
 * @file
 * Execution tracing for the cycle-level simulator.
 *
 * When a Trace is passed to accel::simulate(), every M-DFG node's
 * placement and [start, finish) cycle window is recorded. The trace
 * exports through the shared Chrome trace-event writer
 * (support/trace.hh; load in chrome://tracing or Perfetto): clusters
 * appear as processes, CUs as threads, with CC-wide SIMD/GROUP work on
 * the reserved kCcWideLane thread lane. Lanes are labeled with
 * thread_name metadata records, so the CC-wide lane can never be
 * confused with a real CU of any index (the old export reused tid 99
 * as a sentinel, which collided with CU 99 on wide clusters).
 */

#ifndef ROBOX_ACCEL_TRACE_HH
#define ROBOX_ACCEL_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mdfg/mdfg.hh"

namespace robox::accel
{

/**
 * Reserved (negative) thread lane for CC-wide SIMD/GROUP execution in
 * the Chrome export. Real CUs are non-negative, so no configuration
 * can collide with it; the lane is additionally labeled via a
 * thread_name metadata record.
 */
constexpr int kCcWideLane = -1;

/** One executed node occurrence. */
struct TraceEvent
{
    std::uint32_t node = 0;
    mdfg::NodeKind kind = mdfg::NodeKind::Scalar;
    sym::Op op = sym::Op::Add;
    mdfg::Phase phase = mdfg::Phase::Dynamics;
    int stage = 0;
    int cc = 0;
    int cu = -1; //!< -1 for CC-wide execution.
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
};

/**
 * A zero-duration self-check marker: a watchdog trip, a parity or
 * checksum detection, or the recovery ladder engaging. Rendered as an
 * "accel" category instant event on the cluster's CC-wide lane so
 * detections line up against the work that was executing.
 */
struct TraceMarker
{
    std::string name;        //!< e.g. "watchdog:compute".
    std::uint64_t cycle = 0; //!< Cycle the detector fired.
    int cc = 0;              //!< Cluster lane to pin the marker to.
};

/** An append-only execution trace. */
class Trace
{
  public:
    void
    record(TraceEvent event)
    {
        events_.push_back(event);
    }

    /** Record one self-check marker. */
    void
    mark(std::string name, std::uint64_t cycle, int cc = 0)
    {
        markers_.push_back({std::move(name), cycle, cc});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    const std::vector<TraceMarker> &markers() const { return markers_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty() && markers_.empty(); }

    /**
     * Export as Chrome trace-event JSON ("traceEvents" array of "X"
     * complete events; 1 cycle = 1 us of trace time).
     */
    std::string toChromeJson() const;

    /** Write the JSON to a file; fatal() on I/O failure. */
    void writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> events_;
    std::vector<TraceMarker> markers_;
};

} // namespace robox::accel

#endif // ROBOX_ACCEL_TRACE_HH
